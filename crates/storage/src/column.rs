//! `PaiBin`: a fixed-stride binary columnar raw-file format.
//!
//! The paper's adaptation cost is dominated by positional reads of raw-file
//! objects. Over CSV every such read re-parses a whole variable-length text
//! line; this module provides the production alternative: values stored as
//! little-endian `f64` in column-major order, so the byte position of any
//! value is pure arithmetic —
//!
//! ```text
//! position(row, col) = data_start + (col · n_rows + row) · 8
//! ```
//!
//! — O(1) row addressing (`row_id * stride`, stride = 8 inside a column), no
//! parsing, and positional reads that fetch exactly the 8 bytes per
//! requested value instead of a full record. Locators handed out by
//! [`BinFile`] are therefore plain row ids, not byte offsets.
//!
//! ## On-disk layout
//!
//! ```text
//! magic      8  bytes   b"PAIBIN01"
//! n_cols     u32 LE
//! x_axis     u32 LE     axis column ids (see `Schema`)
//! y_axis     u32 LE
//! n_rows     u64 LE
//! per column: name_len u16 LE, then `name_len` UTF-8 bytes
//! data       n_cols · n_rows · 8 bytes, column-major f64 LE
//! ```
//!
//! Only numeric columns are representable (integers ride along as `f64`,
//! NaN encodes NULL, same convention as the CSV parser). Text columns must
//! stay in CSV.
//!
//! ## Access paths
//!
//! * **Sequential scan** — a paged reader pulls `PAGE_ROWS` rows of every
//!   column per step (contiguous per-column reads), reassembles rows, and
//!   lends them to the handler as decoded-value [`Record`]s. The scan shards
//!   cleanly on row ranges, so parallel initialization works out of the box.
//! * **Positional reads** — requested row ids are sorted and coalesced into
//!   maximal runs of adjacent rows per column; each run is one seek + one
//!   read of exactly `8 · run_len` bytes. Clustered tiles degrade to
//!   near-sequential I/O, scattered ones pay 8 bytes per value instead of a
//!   full CSV line.

use std::fs::File;
use std::io::{BufReader, Cursor, Read};
use std::path::{Path, PathBuf};
use std::str::FromStr;
use std::sync::Arc;

use pai_common::{AttrId, IoCounters, PaiError, Result, RowId, RowLocator};

use crate::cache::CacheMode;
use crate::fetch::{SpanFetcher, SpanMeters};
use crate::raw::{RawFile, Record, RowHandler, ScanPartition};
use crate::remote::{BlobReader, HttpBlob};
use crate::schema::{Column, Schema};

/// File magic, including the format version.
pub const PAIBIN_MAGIC: [u8; 8] = *b"PAIBIN01";

/// Rows fetched per column per step of a sequential scan (the page size of
/// the paged reader, in rows; 4096 rows = 32 KiB per column page).
const PAGE_ROWS: u64 = 4096;

/// Upper bound on the column count a header may declare; anything above is
/// treated as corruption (real schemas top out in the dozens).
const MAX_COLUMNS: usize = 65_536;

/// Which raw-file representation backs a dataset.
///
/// Used by benches and tools that must construct "the same dataset" behind
/// either backend (e.g. the `PAI_BENCH_BACKEND` knob).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StorageBackend {
    /// Text CSV, accessed in situ ([`crate::CsvFile`] / [`crate::MemFile`]).
    #[default]
    Csv,
    /// Binary columnar `PaiBin` ([`BinFile`]).
    Bin,
    /// `PaiBin` behind a zero-copy memory mapping
    /// ([`BinFile::open_mapped`]).
    Mmap,
    /// Zone-mapped compressed columnar `PaiZone` ([`crate::ZoneFile`]).
    Zone,
    /// `PaiZone` behind a simulated high-latency link
    /// ([`crate::LatencyFile`]) — the remote cost model without a wire.
    Latency,
    /// `PaiZone` served over real HTTP range requests from an object store
    /// ([`crate::HttpFile`]) — the remote transport.
    Http,
}

impl StorageBackend {
    /// Short lowercase tag (`csv` / `bin` / `mmap` / `zone` / `latency` /
    /// `http`), stable for cache keys and CLI output.
    pub fn tag(&self) -> &'static str {
        match self {
            StorageBackend::Csv => "csv",
            StorageBackend::Bin => "bin",
            StorageBackend::Mmap => "mmap",
            StorageBackend::Zone => "zone",
            StorageBackend::Latency => "latency",
            StorageBackend::Http => "http",
        }
    }
}

impl std::fmt::Display for StorageBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.tag())
    }
}

impl FromStr for StorageBackend {
    type Err = PaiError;

    fn from_str(s: &str) -> Result<Self> {
        match s.trim().to_ascii_lowercase().as_str() {
            "csv" => Ok(StorageBackend::Csv),
            "bin" | "paibin" | "binary" => Ok(StorageBackend::Bin),
            "mmap" | "bin-mmap" => Ok(StorageBackend::Mmap),
            "zone" | "paizone" => Ok(StorageBackend::Zone),
            "latency" | "remote" => Ok(StorageBackend::Latency),
            "http" | "objstore" => Ok(StorageBackend::Http),
            other => Err(PaiError::config(format!(
                "unknown storage backend '{other}' (expected one of \
                 'csv', 'bin', 'mmap', 'zone', 'latency', 'http')"
            ))),
        }
    }
}

// ---------------------------------------------------------------------------
// Header encoding/decoding.
// ---------------------------------------------------------------------------

fn encode_header(schema: &Schema, n_rows: u64) -> Result<Vec<u8>> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&PAIBIN_MAGIC);
    out.extend_from_slice(&(schema.len() as u32).to_le_bytes());
    out.extend_from_slice(&(schema.x_axis() as u32).to_le_bytes());
    out.extend_from_slice(&(schema.y_axis() as u32).to_le_bytes());
    out.extend_from_slice(&n_rows.to_le_bytes());
    for col in schema.columns() {
        if !col.ty.is_numeric() {
            return Err(PaiError::schema(format!(
                "column '{}' is not numeric; text columns cannot be stored in PaiBin",
                col.name
            )));
        }
        let name = col.name.as_bytes();
        if name.len() > u16::MAX as usize {
            return Err(PaiError::schema(format!(
                "column name '{}…' too long for the PaiBin header",
                &col.name[..32.min(col.name.len())]
            )));
        }
        out.extend_from_slice(&(name.len() as u16).to_le_bytes());
        out.extend_from_slice(name);
    }
    Ok(out)
}

/// Decoded header: schema, row count, and where the column data begins.
struct BinHeader {
    schema: Schema,
    n_rows: u64,
    data_start: u64,
}

fn corrupt(what: impl Into<String>) -> PaiError {
    PaiError::internal(format!("corrupt PaiBin file: {}", what.into()))
}

fn decode_header<R: Read>(reader: &mut R) -> Result<BinHeader> {
    let mut magic = [0u8; 8];
    reader
        .read_exact(&mut magic)
        .map_err(|_| corrupt("truncated magic"))?;
    if magic != PAIBIN_MAGIC {
        return Err(corrupt("bad magic (not a PaiBin file?)"));
    }
    let mut u32buf = [0u8; 4];
    let mut read_u32 = |reader: &mut R, what: &str| -> Result<u32> {
        reader
            .read_exact(&mut u32buf)
            .map_err(|_| corrupt(format!("truncated {what}")))?;
        Ok(u32::from_le_bytes(u32buf))
    };
    let n_cols = read_u32(reader, "column count")? as usize;
    // Guard the allocation below: a corrupt/crafted count must surface as
    // the usual corruption error, not an out-of-memory abort.
    if n_cols == 0 || n_cols > MAX_COLUMNS {
        return Err(corrupt(format!(
            "implausible column count {n_cols} (max {MAX_COLUMNS})"
        )));
    }
    let x_axis = read_u32(reader, "x-axis id")? as usize;
    let y_axis = read_u32(reader, "y-axis id")? as usize;
    let mut u64buf = [0u8; 8];
    reader
        .read_exact(&mut u64buf)
        .map_err(|_| corrupt("truncated row count"))?;
    let n_rows = u64::from_le_bytes(u64buf);

    let mut data_start = (8 + 4 + 4 + 4 + 8) as u64;
    let mut columns = Vec::with_capacity(n_cols);
    for i in 0..n_cols {
        let mut lenbuf = [0u8; 2];
        reader
            .read_exact(&mut lenbuf)
            .map_err(|_| corrupt(format!("truncated name of column {i}")))?;
        let len = u16::from_le_bytes(lenbuf) as usize;
        let mut name = vec![0u8; len];
        reader
            .read_exact(&mut name)
            .map_err(|_| corrupt(format!("truncated name of column {i}")))?;
        let name =
            String::from_utf8(name).map_err(|_| corrupt(format!("column {i} name not UTF-8")))?;
        columns.push(Column::float(name));
        data_start += 2 + len as u64;
    }
    let schema = Schema::new(columns, x_axis, y_axis)?;
    Ok(BinHeader {
        schema,
        n_rows,
        data_start,
    })
}

// ---------------------------------------------------------------------------
// Encoding (the CSV → binary converter).
// ---------------------------------------------------------------------------

/// Serializes fully-buffered columns plus header into PaiBin bytes.
fn encode_columns(schema: &Schema, columns: Vec<Vec<f64>>) -> Result<Vec<u8>> {
    let n_rows = columns.first().map_or(0, |c| c.len()) as u64;
    debug_assert!(columns.iter().all(|c| c.len() as u64 == n_rows));
    let mut out = encode_header(schema, n_rows)?;
    out.reserve(columns.len() * n_rows as usize * 8);
    for col in &columns {
        for &v in col {
            out.extend_from_slice(&v.to_le_bytes());
        }
    }
    Ok(out)
}

/// Encodes an iterator of numeric rows (each `schema.len()` wide) as PaiBin
/// bytes. The transpose to column-major happens in memory.
pub fn encode_rows<I>(schema: &Schema, rows: I) -> Result<Vec<u8>>
where
    I: IntoIterator<Item = Vec<f64>>,
{
    let n_cols = schema.len();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); n_cols];
    for (i, row) in rows.into_iter().enumerate() {
        if row.len() != n_cols {
            return Err(PaiError::schema(format!(
                "row {i} has {} values, schema has {n_cols} columns",
                row.len()
            )));
        }
        for (col, &v) in columns.iter_mut().zip(&row) {
            col.push(v);
        }
    }
    encode_columns(schema, columns)
}

/// The single conversion pass: scans `src` once, transposing rows into
/// per-column buffers (the row-major → column-major turn needs either full
/// buffering or one pass per column; we spend memory — one `f64` per value —
/// to keep the scan single).
fn buffer_columns(src: &dyn RawFile) -> Result<(Schema, Vec<Vec<f64>>)> {
    let schema = src.schema().clone();
    for col in schema.columns() {
        if !col.ty.is_numeric() {
            return Err(PaiError::schema(format!(
                "cannot convert column '{}' to PaiBin: not numeric",
                col.name
            )));
        }
    }
    let wanted: Vec<AttrId> = (0..schema.len()).collect();
    let mut columns: Vec<Vec<f64>> = vec![Vec::new(); schema.len()];
    let mut vals = Vec::with_capacity(schema.len());
    src.scan(&mut |_, _, rec| {
        rec.extract_f64(&wanted, &mut vals)?;
        for (col, &v) in columns.iter_mut().zip(&vals) {
            col.push(v);
        }
        Ok(())
    })?;
    Ok((schema, columns))
}

/// One-pass CSV → binary converter: scans `src` once, buffering each column,
/// and returns the dataset re-encoded as PaiBin bytes.
///
/// Fails on schemas with text columns (PaiBin is numeric-only). The scan is
/// metered on `src`'s counters like any other full pass. Peak memory is
/// roughly twice the dataset's binary size (column buffers + the returned
/// bytes); prefer [`write_bin`] for large datasets, which streams the
/// encoded bytes to disk instead of materializing them.
pub fn convert_to_bin(src: &dyn RawFile) -> Result<Vec<u8>> {
    let (schema, columns) = buffer_columns(src)?;
    encode_columns(&schema, columns)
}

/// Converts `src` to PaiBin on disk at `path` and opens the result.
///
/// Same single conversion pass as [`convert_to_bin`], but the encoded bytes
/// stream straight to the file: peak memory is one `f64` per dataset value
/// (the column buffers), not that plus a full serialized copy.
pub fn write_bin(src: &dyn RawFile, path: impl AsRef<Path>) -> Result<BinFile> {
    let (schema, columns) = buffer_columns(src)?;
    let n_rows = columns.first().map_or(0, |c| c.len()) as u64;
    let mut out = std::io::BufWriter::with_capacity(1 << 20, File::create(path.as_ref())?);
    use std::io::Write;
    out.write_all(&encode_header(&schema, n_rows)?)?;
    for col in &columns {
        for &v in col {
            out.write_all(&v.to_le_bytes())?;
        }
    }
    out.flush()?;
    drop(out);
    BinFile::open(path)
}

// ---------------------------------------------------------------------------
// BinFile.
// ---------------------------------------------------------------------------

/// Where the PaiBin bytes live.
#[derive(Debug, Clone)]
enum BinSource {
    Disk(PathBuf),
    Mem(Arc<Vec<u8>>),
    Mapped(Arc<crate::mapped::Mapping>),
    Remote(Arc<HttpBlob>),
}

/// A PaiBin binary columnar file. Locators are row ids.
///
/// Cloning is cheap and clones share the same [`IoCounters`]; each access
/// opens its own handle, so a `BinFile` can serve concurrent readers just
/// like [`crate::CsvFile`].
#[derive(Debug, Clone)]
pub struct BinFile {
    source: BinSource,
    schema: Schema,
    n_rows: u64,
    data_start: u64,
    size_bytes: u64,
    counters: IoCounters,
}

impl BinFile {
    /// Opens an existing PaiBin file, validating header and size.
    pub fn open(path: impl AsRef<Path>) -> Result<Self> {
        let path = path.as_ref().to_path_buf();
        let size = std::fs::metadata(&path)?.len();
        let mut reader = BufReader::new(File::open(&path)?);
        let header = decode_header(&mut reader)?;
        let file = BinFile {
            source: BinSource::Disk(path),
            schema: header.schema,
            n_rows: header.n_rows,
            data_start: header.data_start,
            size_bytes: size,
            counters: IoCounters::new(),
        };
        file.validate_size()?;
        Ok(file)
    }

    /// Opens an existing PaiBin file through a zero-copy memory mapping
    /// (buffered fallback on platforms without `mmap`). Behaviourally
    /// identical to [`BinFile::open`] — same locators, same metering — but
    /// positional reads become pointer arithmetic into shared pages instead
    /// of seek+read syscalls, which is exactly what the batched adaptation
    /// fetch wants.
    pub fn open_mapped(path: impl AsRef<Path>) -> Result<Self> {
        let mapping = Arc::new(crate::mapped::Mapping::map(path)?);
        let size = mapping.len() as u64;
        let header = decode_header(&mut Cursor::new(&mapping[..]))?;
        let file = BinFile {
            source: BinSource::Mapped(mapping),
            schema: header.schema,
            n_rows: header.n_rows,
            data_start: header.data_start,
            size_bytes: size,
            counters: IoCounters::new(),
        };
        file.validate_size()?;
        Ok(file)
    }

    /// Opens a PaiBin image that lives behind a remote object store. The
    /// header is fetched and validated up front; column data is fetched on
    /// demand through the blob's coalescing span reads. The file shares the
    /// blob's [`IoCounters`].
    pub fn open_remote(blob: Arc<HttpBlob>) -> Result<Self> {
        let size = blob.len();
        let header = decode_header(&mut BlobReader::new(&blob))?;
        let counters = blob.counters().clone();
        let file = BinFile {
            source: BinSource::Remote(blob),
            schema: header.schema,
            n_rows: header.n_rows,
            data_start: header.data_start,
            size_bytes: size,
            counters,
        };
        file.validate_size()?;
        Ok(file)
    }

    /// Whether reads go through a zero-copy memory mapping.
    pub fn is_mapped(&self) -> bool {
        matches!(self.source, BinSource::Mapped(_))
    }

    /// Whether reads go out as HTTP range requests to a remote object.
    pub fn is_remote(&self) -> bool {
        matches!(self.source, BinSource::Remote(_))
    }

    /// Wraps in-memory PaiBin bytes (tests, examples, converters).
    pub fn from_bytes(bytes: impl Into<Vec<u8>>) -> Result<Self> {
        let bytes: Vec<u8> = bytes.into();
        let size = bytes.len() as u64;
        let header = decode_header(&mut Cursor::new(bytes.as_slice()))?;
        let file = BinFile {
            source: BinSource::Mem(Arc::new(bytes)),
            schema: header.schema,
            n_rows: header.n_rows,
            data_start: header.data_start,
            size_bytes: size,
            counters: IoCounters::new(),
        };
        file.validate_size()?;
        Ok(file)
    }

    /// Encodes numeric rows directly into an in-memory PaiBin file.
    pub fn from_rows<I>(schema: &Schema, rows: I) -> Result<Self>
    where
        I: IntoIterator<Item = Vec<f64>>,
    {
        BinFile::from_bytes(encode_rows(schema, rows)?)
    }

    /// Number of data rows in the file.
    pub fn n_rows(&self) -> u64 {
        self.n_rows
    }

    /// Location on disk, when file-backed. Mappings do not advertise a
    /// path (grab it before calling [`BinFile::open_mapped`]).
    pub fn path(&self) -> Option<&Path> {
        match &self.source {
            BinSource::Disk(p) => Some(p),
            _ => None,
        }
    }

    fn validate_size(&self) -> Result<()> {
        // Checked arithmetic: a crafted row count must fail as corruption,
        // not overflow. Once this passes, every position() computed for
        // in-range (row, col) fits in u64.
        let expect = (self.schema.len() as u64)
            .checked_mul(self.n_rows)
            .and_then(|v| v.checked_mul(8))
            .and_then(|v| v.checked_add(self.data_start))
            .ok_or_else(|| corrupt("row count overflows the addressable size"))?;
        if self.size_bytes != expect {
            return Err(corrupt(format!(
                "size {} does not match header (expected {expect})",
                self.size_bytes
            )));
        }
        Ok(())
    }

    /// The span reader for one logical access: a fresh local handle, or
    /// the shared remote blob (coalescing ranged GETs).
    fn fetcher(&self) -> Result<SpanFetcher<'_>> {
        Ok(match &self.source {
            BinSource::Disk(path) => SpanFetcher::Local(Box::new(File::open(path)?)),
            BinSource::Mem(bytes) => SpanFetcher::Local(Box::new(Cursor::new(bytes.as_slice()))),
            BinSource::Mapped(map) => SpanFetcher::Local(Box::new(Cursor::new(&map[..]))),
            BinSource::Remote(blob) => SpanFetcher::Remote(blob),
        })
    }

    /// Byte position of `(row, col)` — the O(1) addressing PaiBin exists for.
    #[inline]
    fn position(&self, row: u64, col: usize) -> u64 {
        self.data_start + (col as u64 * self.n_rows + row) * 8
    }

    /// Scans rows `[start, end)`, the engine of both `scan` and
    /// `scan_partition`. `counters` bytes/seeks/objects are metered here;
    /// the full-scan tick is the caller's business.
    fn scan_rows(&self, start: u64, end: u64, handler: &mut RowHandler<'_>) -> Result<()> {
        if start >= end {
            return Ok(());
        }
        if end > self.n_rows {
            return Err(PaiError::internal(format!(
                "scan range [{start}, {end}) exceeds {} rows",
                self.n_rows
            )));
        }
        let n_cols = self.schema.len();
        let mut fetcher = self.fetcher()?;
        // Paged reading: per step, one contiguous fetch per column, all
        // columns' page spans batched into one fetch call (a remote source
        // turns the batch into pipelined ranged GETs on one connection).
        let mut pages: Vec<Vec<f64>> = vec![Vec::new(); n_cols];
        let mut values = vec![0.0f64; n_cols];
        let mut local_row: RowId = 0;
        let mut row0 = start;
        let mut spans: Vec<(u64, u64)> = Vec::with_capacity(n_cols);
        let mut bufs: Vec<Vec<u8>> = Vec::new();
        while row0 < end {
            let batch = PAGE_ROWS.min(end - row0);
            spans.clear();
            spans.extend((0..n_cols).map(|col| (self.position(row0, col), batch * 8)));
            let mut m = SpanMeters::default();
            fetcher.read_spans(&spans, &mut bufs, &mut m, CacheMode::Stream)?;
            self.counters.add_seeks(m.seeks);
            self.counters.add_bytes(m.bytes);
            self.counters.add_blocks_read(n_cols as u64);
            for (page, buf) in pages.iter_mut().zip(&bufs) {
                page.clear();
                page.extend(
                    buf.chunks_exact(8)
                        .map(|c| f64::from_le_bytes(c.try_into().expect("8-byte chunk"))),
                );
            }
            for i in 0..batch as usize {
                for (v, page) in values.iter_mut().zip(&pages) {
                    *v = page[i];
                }
                let row = row0 + i as u64;
                let rec = Record::from_values(&values, row);
                handler(local_row, RowLocator::new(row), &rec)?;
                local_row += 1;
                self.counters.add_objects(1);
            }
            row0 += batch;
        }
        Ok(())
    }
}

impl RawFile for BinFile {
    fn schema(&self) -> &Schema {
        &self.schema
    }

    fn value_bytes_hint(&self) -> Option<f64> {
        Some(8.0)
    }

    fn counters(&self) -> &IoCounters {
        &self.counters
    }

    fn size_bytes(&self) -> u64 {
        self.size_bytes
    }

    fn scan(&self, handler: &mut RowHandler<'_>) -> Result<()> {
        self.counters.add_full_scan();
        self.scan_rows(0, self.n_rows, handler)
    }

    fn read_rows(&self, locators: &[RowLocator], attrs: &[AttrId]) -> Result<Vec<Vec<f64>>> {
        self.counters.add_read_call();
        for &a in attrs {
            if a >= self.schema.len() {
                return Err(PaiError::schema(format!(
                    "column id {a} out of range ({} columns)",
                    self.schema.len()
                )));
            }
        }
        // Sort requests by row id; remember each request's output slot.
        let mut order: Vec<(usize, u64)> = locators.iter().map(|l| l.raw()).enumerate().collect();
        order.sort_by_key(|&(_, row)| row);
        if let Some(&(_, max_row)) = order.last() {
            if max_row >= self.n_rows {
                return Err(PaiError::internal(format!(
                    "positional read of row {max_row} hit EOF ({} rows)",
                    self.n_rows
                )));
            }
        }

        let mut out: Vec<Vec<f64>> = vec![vec![0.0; attrs.len()]; locators.len()];
        if locators.is_empty() || attrs.is_empty() {
            self.counters.add_objects(locators.len() as u64);
            return Ok(out);
        }

        let mut fetcher = self.fetcher()?;
        let mut m = SpanMeters::default();
        let mut blocks = 0u64;
        // Per-run decode work deferred until the attribute's span batch is
        // fetched: (first request index, one-past-last).
        let mut runs: Vec<(usize, usize)> = Vec::new();
        let mut spans: Vec<(u64, u64)> = Vec::new();
        let mut bufs: Vec<Vec<u8>> = Vec::new();
        for (ai, &attr) in attrs.iter().enumerate() {
            // Coalesce sorted rows into maximal runs of adjacent rows: one
            // seek + one exact read of 8·run_len bytes per run, the whole
            // attribute batched into one fetch call (a remote source merges
            // nearby runs into shared ranged GETs).
            runs.clear();
            spans.clear();
            let mut i = 0;
            // PAGE_ROWS-sized pages double as PaiBin's block unit for the
            // `blocks_read` meter (comparable with PaiZone's blocks); count
            // each page touched at most once per attribute.
            let mut counted_page: Option<u64> = None;
            while i < order.len() {
                let mut j = i + 1;
                while j < order.len() && order[j].1 == order[j - 1].1 + 1 {
                    j += 1;
                }
                let (p0, p1) = (order[i].1 / PAGE_ROWS, order[j - 1].1 / PAGE_ROWS);
                let from = match counted_page {
                    Some(p) if p >= p0 => p + 1,
                    _ => p0,
                };
                if from <= p1 {
                    blocks += p1 - from + 1;
                    counted_page = Some(p1);
                }
                let run_rows = (order[j - 1].1 - order[i].1 + 1) as usize;
                runs.push((i, j));
                spans.push((self.position(order[i].1, attr), run_rows as u64 * 8));
                i = j;
            }
            fetcher.read_spans(&spans, &mut bufs, &mut m, CacheMode::Admit)?;
            for (&(i, j), buf) in runs.iter().zip(&bufs) {
                for &(slot, row) in &order[i..j] {
                    let o = (row - order[i].1) as usize * 8;
                    out[slot][ai] =
                        f64::from_le_bytes(buf[o..o + 8].try_into().expect("8-byte value"));
                }
            }
        }
        self.counters.add_objects(locators.len() as u64);
        self.counters.add_bytes(m.bytes);
        self.counters.add_seeks(m.seeks);
        self.counters.add_blocks_read(blocks);
        Ok(out)
    }

    fn partitions(&self, n: usize) -> Result<Vec<ScanPartition>> {
        assert!(n >= 1, "need at least one partition");
        if self.n_rows == 0 {
            return Ok(Vec::new());
        }
        let n = (n as u64).min(self.n_rows);
        let per = self.n_rows.div_ceil(n);
        Ok((0..n)
            .map(|i| ScanPartition {
                start: i * per,
                end: ((i + 1) * per).min(self.n_rows),
            })
            .filter(|p| p.end > p.start)
            .collect())
    }

    fn scan_partition(&self, partition: ScanPartition, handler: &mut RowHandler<'_>) -> Result<()> {
        // Honor the trait-level "everything" sentinel so generic callers can
        // treat all backends uniformly.
        if partition == ScanPartition::WHOLE {
            return self.scan_rows(0, self.n_rows, handler);
        }
        self.scan_rows(partition.start, partition.end, handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::csv::CsvFormat;
    use crate::raw::MemFile;

    fn rows() -> Vec<Vec<f64>> {
        vec![
            vec![1.0, 10.0, 100.0],
            vec![2.0, 20.0, 200.0],
            vec![3.0, 30.0, 300.0],
            vec![4.0, 40.0, 400.0],
        ]
    }

    fn sample() -> BinFile {
        BinFile::from_rows(&Schema::synthetic(3), rows()).unwrap()
    }

    #[test]
    fn header_round_trip() {
        let f = sample();
        assert_eq!(f.n_rows(), 4);
        assert_eq!(f.schema().len(), 3);
        assert_eq!(f.schema().x_axis(), 0);
        assert_eq!(f.schema().y_axis(), 1);
        assert_eq!(f.schema().columns()[2].name, "col2");
        assert!(f.path().is_none());
    }

    #[test]
    fn scan_yields_row_id_locators() {
        let f = sample();
        let mut seen = Vec::new();
        f.scan(&mut |row, loc, rec| {
            seen.push((row, loc.raw(), rec.f64(0)?, rec.f64(2)?));
            Ok(())
        })
        .unwrap();
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[0], (0, 0, 1.0, 100.0));
        assert_eq!(seen[3], (3, 3, 4.0, 400.0));
        assert_eq!(f.counters().full_scans(), 1);
        assert_eq!(f.counters().objects_read(), 4);
        // The scan fetches exactly the data region.
        assert_eq!(f.counters().bytes_read(), 3 * 4 * 8);
    }

    #[test]
    fn read_rows_by_row_id_in_request_order() {
        let f = sample();
        let locs: Vec<RowLocator> = [3u64, 0, 2].iter().map(|&r| RowLocator::new(r)).collect();
        let vals = f.read_rows(&locs, &[2, 0]).unwrap();
        assert_eq!(
            vals,
            vec![vec![400.0, 4.0], vec![100.0, 1.0], vec![300.0, 3.0]]
        );
        assert_eq!(f.counters().objects_read(), 3);
        // 3 rows × 2 attrs × 8 bytes: positional reads fetch values only.
        assert_eq!(f.counters().bytes_read(), 3 * 2 * 8);
    }

    #[test]
    fn adjacent_rows_coalesce_into_one_run() {
        let f = sample();
        f.counters().reset();
        let locs: Vec<RowLocator> = (0..4).map(RowLocator::new).collect();
        let vals = f.read_rows(&locs, &[1]).unwrap();
        assert_eq!(vals.iter().flatten().copied().sum::<f64>(), 100.0);
        assert_eq!(
            f.counters().seeks(),
            1,
            "a fully-adjacent batch is one run = one seek"
        );
        assert_eq!(f.counters().bytes_read(), 4 * 8);
    }

    #[test]
    fn duplicate_locators_read_twice() {
        let f = sample();
        let locs = [RowLocator::new(1), RowLocator::new(1)];
        let vals = f.read_rows(&locs, &[2]).unwrap();
        assert_eq!(vals, vec![vec![200.0], vec![200.0]]);
    }

    #[test]
    fn out_of_range_row_is_internal_error() {
        let f = sample();
        let err = f.read_rows(&[RowLocator::new(99)], &[0]).unwrap_err();
        assert!(err.to_string().contains("EOF"), "{err}");
        assert!(f.read_rows(&[RowLocator::new(0)], &[17]).is_err());
    }

    #[test]
    fn nan_values_round_trip() {
        let f = BinFile::from_rows(
            &Schema::synthetic(3),
            vec![vec![1.0, 2.0, f64::NAN], vec![3.0, 4.0, 5.0]],
        )
        .unwrap();
        let vals = f
            .read_rows(&[RowLocator::new(0), RowLocator::new(1)], &[2])
            .unwrap();
        assert!(vals[0][0].is_nan(), "NaN (NULL) survives the binary format");
        assert_eq!(vals[1][0], 5.0);
    }

    #[test]
    fn convert_from_csv_preserves_values() {
        let schema = Schema::synthetic(3);
        let csv = MemFile::from_rows(schema, CsvFormat::default(), rows()).unwrap();
        let bin = BinFile::from_bytes(convert_to_bin(&csv).unwrap()).unwrap();
        assert_eq!(bin.n_rows(), 4);
        let mut got = Vec::new();
        bin.scan(&mut |_, _, rec| {
            let mut vals = Vec::new();
            rec.extract_f64(&[0, 1, 2], &mut vals)?;
            got.push(vals);
            Ok(())
        })
        .unwrap();
        assert_eq!(got, rows());
        // The conversion scan was metered on the CSV source.
        assert_eq!(csv.counters().full_scans(), 1);
    }

    #[test]
    fn convert_rejects_text_columns() {
        let schema = Schema::new(
            vec![Column::float("x"), Column::float("y"), Column::text("t")],
            0,
            1,
        )
        .unwrap();
        let csv = MemFile::from_text("x,y,t\n1,2,hi\n", schema.clone(), CsvFormat::default());
        assert!(convert_to_bin(&csv).is_err());
        assert!(encode_rows(&schema, vec![vec![1.0, 2.0, 3.0]]).is_err());
    }

    #[test]
    fn disk_round_trip() {
        let dir = std::env::temp_dir().join("pai_column_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("round_trip.paibin");
        let csv = MemFile::from_rows(Schema::synthetic(3), CsvFormat::default(), rows()).unwrap();
        let bin = write_bin(&csv, &path).unwrap();
        assert_eq!(bin.path(), Some(path.as_path()));
        assert_eq!(bin.n_rows(), 4);
        let vals = bin.read_rows(&[RowLocator::new(2)], &[2]).unwrap();
        assert_eq!(vals, vec![vec![300.0]]);
        // Reopening validates header + size.
        let reopened = BinFile::open(&path).unwrap();
        assert_eq!(reopened.n_rows(), 4);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_file_rejected() {
        let bytes = encode_rows(&Schema::synthetic(2), vec![vec![1.0, 2.0]]).unwrap();
        let mut truncated = bytes.clone();
        truncated.truncate(bytes.len() - 4);
        assert!(BinFile::from_bytes(truncated).is_err());
        let mut bad_magic = bytes;
        bad_magic[0] = b'X';
        assert!(BinFile::from_bytes(bad_magic).is_err());
    }

    #[test]
    fn absurd_column_count_is_an_error_not_an_abort() {
        // A crafted header claiming u32::MAX columns must fail cleanly
        // before any column-table allocation happens.
        let mut bytes = encode_rows(&Schema::synthetic(2), vec![vec![1.0, 2.0]]).unwrap();
        bytes[8..12].copy_from_slice(&u32::MAX.to_le_bytes());
        let err = BinFile::from_bytes(bytes).unwrap_err();
        assert!(err.to_string().contains("column count"), "{err}");
    }

    #[test]
    fn absurd_row_count_is_an_error_not_an_overflow() {
        // A crafted row count near u64::MAX must trip the checked size
        // validation (not wrap around and pass it).
        let mut bytes = encode_rows(&Schema::synthetic(2), vec![vec![1.0, 2.0]]).unwrap();
        bytes[20..28].copy_from_slice(&(u64::MAX / 2).to_le_bytes());
        let err = BinFile::from_bytes(bytes).unwrap_err();
        assert!(err.to_string().contains("corrupt"), "{err}");
    }

    #[test]
    fn whole_partition_scans_everything() {
        let f = sample();
        let mut rows = 0;
        f.scan_partition(crate::raw::ScanPartition::WHOLE, &mut |_, _, _| {
            rows += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(rows, 4, "the trait-level WHOLE sentinel must be honored");
    }

    #[test]
    fn partitions_cover_rows_exactly_once() {
        let many: Vec<Vec<f64>> = (0..1000).map(|i| vec![i as f64, 0.5, 1.0]).collect();
        let f = BinFile::from_rows(&Schema::synthetic(3), many).unwrap();
        for n in [1usize, 3, 7] {
            let parts = f.partitions(n).unwrap();
            let mut xs: Vec<f64> = Vec::new();
            for p in &parts {
                f.scan_partition(*p, &mut |_, _, rec| {
                    xs.push(rec.f64(0)?);
                    Ok(())
                })
                .unwrap();
            }
            xs.sort_by(|a, b| a.partial_cmp(b).unwrap());
            assert_eq!(xs.len(), 1000, "n={n}");
            assert_eq!(xs[999], 999.0);
        }
        // More partitions than rows degrades gracefully.
        let tiny = BinFile::from_rows(&Schema::synthetic(2), vec![vec![1.0, 2.0]]).unwrap();
        assert_eq!(tiny.partitions(16).unwrap().len(), 1);
    }

    #[test]
    fn empty_file_scans_nothing() {
        let f = BinFile::from_rows(&Schema::synthetic(2), Vec::<Vec<f64>>::new()).unwrap();
        assert_eq!(f.n_rows(), 0);
        let mut rows = 0;
        f.scan(&mut |_, _, _| {
            rows += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(rows, 0);
        assert!(f.partitions(4).unwrap().is_empty());
    }

    #[test]
    fn backend_parses_and_prints() {
        assert_eq!(
            "csv".parse::<StorageBackend>().unwrap(),
            StorageBackend::Csv
        );
        assert_eq!(
            "BIN".parse::<StorageBackend>().unwrap(),
            StorageBackend::Bin
        );
        assert_eq!(
            "paibin".parse::<StorageBackend>().unwrap(),
            StorageBackend::Bin
        );
        assert_eq!(
            "zone".parse::<StorageBackend>().unwrap(),
            StorageBackend::Zone
        );
        assert_eq!(
            "mmap".parse::<StorageBackend>().unwrap(),
            StorageBackend::Mmap
        );
        assert_eq!(
            "remote".parse::<StorageBackend>().unwrap(),
            StorageBackend::Latency
        );
        assert!("parquet".parse::<StorageBackend>().is_err());
        assert_eq!(StorageBackend::Bin.to_string(), "bin");
        assert_eq!(StorageBackend::Zone.to_string(), "zone");
        assert_eq!(StorageBackend::Latency.to_string(), "latency");
        assert_eq!(StorageBackend::default(), StorageBackend::Csv);
    }

    #[test]
    fn scan_and_fetch_meter_page_blocks() {
        let many: Vec<Vec<f64>> = (0..10_000).map(|i| vec![i as f64, 0.5, 1.0]).collect();
        let f = BinFile::from_rows(&Schema::synthetic(3), many).unwrap();
        f.scan(&mut |_, _, _| Ok(())).unwrap();
        // 10_000 rows = 3 pages of 4096, times 3 columns.
        assert_eq!(f.counters().blocks_read(), 9);
        assert_eq!(f.counters().blocks_skipped(), 0);

        f.counters().reset();
        // Rows straddling a page boundary: 2 pages for 1 attribute.
        let locs: Vec<RowLocator> = (4090..4100).map(RowLocator::new).collect();
        f.read_rows(&locs, &[2]).unwrap();
        assert_eq!(f.counters().blocks_read(), 2);

        f.counters().reset();
        // Two scattered reads inside one page still count the page once.
        let locs = [RowLocator::new(10), RowLocator::new(300)];
        f.read_rows(&locs, &[2]).unwrap();
        assert_eq!(f.counters().blocks_read(), 1);
    }

    #[test]
    fn mapped_bin_file_matches_streamed_reads() {
        let dir = std::env::temp_dir().join("pai_column_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mapped.paibin");
        let csv = MemFile::from_rows(Schema::synthetic(3), CsvFormat::default(), rows()).unwrap();
        let bin = write_bin(&csv, &path).unwrap();
        let mapped = BinFile::open_mapped(&path).unwrap();
        assert!(mapped.is_mapped());
        assert!(!bin.is_mapped());
        assert_eq!(mapped.n_rows(), bin.n_rows());
        assert_eq!(mapped.path(), None, "mappings do not advertise a path");

        let locs: Vec<RowLocator> = (0..4).rev().map(RowLocator::new).collect();
        assert_eq!(
            mapped.read_rows(&locs, &[0, 2]).unwrap(),
            bin.read_rows(&locs, &[0, 2]).unwrap()
        );
        let mut rows_seen = 0;
        mapped
            .scan(&mut |_, _, _| {
                rows_seen += 1;
                Ok(())
            })
            .unwrap();
        assert_eq!(rows_seen, 4);
        // Metering stays comparable: same logical bytes either way.
        assert_eq!(
            mapped.counters().bytes_read(),
            bin.counters().bytes_read() + 3 * 4 * 8
        );
        std::fs::remove_file(&path).ok();
    }
}
