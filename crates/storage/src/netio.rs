//! Shared socket plumbing: per-connection scratch buffers and
//! length-prefixed framing.
//!
//! Both in-process servers in this workspace — the HTTP/1.1
//! [`ObjectStore`](crate::ObjectStore) and the `pai-server` query
//! protocol — run a thread per connection with a read-parse-respond
//! loop. Naively, that loop allocates fresh `String`/`Vec` buffers for
//! every request; under load that is one malloc per header line per
//! request. [`ConnBuf`] owns the scratch storage once per connection
//! and every request reuses it, so the steady-state loop allocates
//! nothing.
//!
//! The frame format used by `pai-server` lives here too so client and
//! server cannot drift: a 4-byte little-endian payload length followed
//! by the payload. [`ConnBuf::read_frame`] distinguishes clean EOF at
//! a frame boundary (`Ok(None)`, the peer hung up between requests)
//! from truncation mid-frame (an error).

use std::io::{BufRead, ErrorKind, Read, Write};

/// Hard ceiling on accepted frame payloads. Anything larger is treated
/// as a protocol error rather than an allocation request — a garbage
/// or hostile length prefix must not OOM the server.
pub const MAX_FRAME_BYTES: usize = 16 * 1024 * 1024;

/// Reusable per-connection scratch buffers. Create one per connection,
/// outside the request loop; every helper clears and reuses the same
/// backing storage, so steady-state request handling performs no
/// allocation (beyond growth to the high-water mark).
#[derive(Debug, Default)]
pub struct ConnBuf {
    line: String,
    frame: Vec<u8>,
    head: String,
}

impl ConnBuf {
    /// Fresh, empty scratch buffers.
    pub fn new() -> Self {
        Self::default()
    }

    /// Reads one `\n`-terminated line, reusing the internal `String`.
    /// Returns `Ok(None)` on EOF before any byte of the line.
    pub fn read_line<R: BufRead>(&mut self, reader: &mut R) -> std::io::Result<Option<&str>> {
        self.line.clear();
        if reader.read_line(&mut self.line)? == 0 {
            return Ok(None);
        }
        Ok(Some(self.line.as_str()))
    }

    /// Reads one length-prefixed frame (u32-LE length, then payload),
    /// reusing the internal `Vec`. Returns `Ok(None)` on clean EOF at
    /// a frame boundary; EOF mid-prefix or mid-payload is an
    /// `UnexpectedEof` error, and a length above [`MAX_FRAME_BYTES`]
    /// is `InvalidData`.
    pub fn read_frame<R: Read>(&mut self, reader: &mut R) -> std::io::Result<Option<&[u8]>> {
        let mut len = [0u8; 4];
        // Hand-rolled first-byte read so EOF *between* frames is clean.
        let mut got = 0;
        while got < len.len() {
            match reader.read(&mut len[got..])? {
                0 if got == 0 => return Ok(None),
                0 => {
                    return Err(std::io::Error::new(
                        ErrorKind::UnexpectedEof,
                        "connection closed inside a frame length prefix",
                    ))
                }
                n => got += n,
            }
        }
        let len = u32::from_le_bytes(len) as usize;
        if len > MAX_FRAME_BYTES {
            return Err(std::io::Error::new(
                ErrorKind::InvalidData,
                format!("frame length {len} exceeds cap {MAX_FRAME_BYTES}"),
            ));
        }
        self.frame.clear();
        self.frame.resize(len, 0);
        reader.read_exact(&mut self.frame)?;
        Ok(Some(self.frame.as_slice()))
    }

    /// A cleared scratch `String` for building response heads (HTTP
    /// status lines and headers) without a per-response allocation.
    /// The caller formats into it with `write!` and sends the bytes.
    pub fn head_scratch(&mut self) -> &mut String {
        self.head.clear();
        &mut self.head
    }
}

/// Writes one length-prefixed frame (u32-LE length, then `payload`)
/// and flushes. Rejects payloads above [`MAX_FRAME_BYTES`] so a buggy
/// caller cannot emit a frame no peer will accept.
pub fn write_frame<W: Write>(writer: &mut W, payload: &[u8]) -> std::io::Result<()> {
    if payload.len() > MAX_FRAME_BYTES {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!(
                "frame length {} exceeds cap {MAX_FRAME_BYTES}",
                payload.len()
            ),
        ));
    }
    writer.write_all(&(payload.len() as u32).to_le_bytes())?;
    writer.write_all(payload)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn frames_roundtrip() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"hello").unwrap();
        write_frame(&mut wire, b"").unwrap();
        write_frame(&mut wire, b"world!").unwrap();
        let mut r = Cursor::new(wire);
        let mut buf = ConnBuf::new();
        assert_eq!(buf.read_frame(&mut r).unwrap(), Some(&b"hello"[..]));
        assert_eq!(buf.read_frame(&mut r).unwrap(), Some(&b""[..]));
        assert_eq!(buf.read_frame(&mut r).unwrap(), Some(&b"world!"[..]));
        // Clean EOF at a frame boundary is None, repeatedly.
        assert_eq!(buf.read_frame(&mut r).unwrap(), None);
        assert_eq!(buf.read_frame(&mut r).unwrap(), None);
    }

    #[test]
    fn truncation_mid_frame_is_an_error() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abcdef").unwrap();
        // Drop the last payload byte.
        wire.pop();
        let mut buf = ConnBuf::new();
        let err = buf.read_frame(&mut Cursor::new(&wire)).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
        // Truncation inside the length prefix is also an error.
        let err = buf.read_frame(&mut Cursor::new(&[1u8, 0][..])).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::UnexpectedEof);
    }

    #[test]
    fn oversized_lengths_are_rejected_without_allocating() {
        let wire = (u32::MAX).to_le_bytes();
        let mut buf = ConnBuf::new();
        let err = buf.read_frame(&mut Cursor::new(&wire[..])).unwrap_err();
        assert_eq!(err.kind(), ErrorKind::InvalidData);
        let mut sink = Vec::new();
        assert!(write_frame(&mut sink, &vec![0u8; MAX_FRAME_BYTES + 1]).is_err());
    }

    #[test]
    fn lines_reuse_scratch() {
        let mut r = Cursor::new(b"GET / HTTP/1.1\r\nHost: x\r\n\r\n".to_vec());
        let mut buf = ConnBuf::new();
        assert_eq!(
            buf.read_line(&mut r).unwrap().map(str::trim_end),
            Some("GET / HTTP/1.1")
        );
        assert_eq!(
            buf.read_line(&mut r).unwrap().map(str::trim_end),
            Some("Host: x")
        );
        assert_eq!(buf.read_line(&mut r).unwrap().map(str::trim_end), Some(""));
        assert_eq!(buf.read_line(&mut r).unwrap(), None);
    }

    #[test]
    fn head_scratch_clears_between_uses() {
        use std::fmt::Write as _;
        let mut buf = ConnBuf::new();
        write!(buf.head_scratch(), "HTTP/1.1 200 OK\r\n").unwrap();
        let h = buf.head_scratch();
        assert!(h.is_empty());
        write!(h, "HTTP/1.1 404 Not Found\r\n").unwrap();
        assert!(h.starts_with("HTTP/1.1 404"));
    }
}
