//! Read-only memory mapping with a portable fallback.
//!
//! The binary backends ([`crate::BinFile`], [`crate::ZoneFile`]) can serve
//! reads straight out of a page-cache-backed mapping instead of
//! seek+`read(2)` pairs: positional access becomes pointer arithmetic into
//! [`Mapping`]'s byte slice and hot pages are shared between every clone and
//! thread. On Unix this is a real `mmap(2)` (declared directly against the
//! C runtime — no external crate); elsewhere it degrades to buffering the
//! file in memory behind the same API, which keeps the backends portable.
//!
//! I/O metering note: mapped access still ticks the same [`pai_common::
//! IoCounters`] the streaming readers do (bytes/seeks describe the *logical*
//! access pattern), so a mapped file remains comparable in reports.

use std::fs::File;
use std::ops::Deref;
use std::path::Path;

use pai_common::Result;

/// An immutable byte view of a whole file: `mmap(2)` where available, an
/// owned in-memory copy elsewhere. Dereferences to `[u8]`.
#[derive(Debug)]
pub struct Mapping {
    inner: MappingInner,
}

#[derive(Debug)]
enum MappingInner {
    #[cfg(unix)]
    Mmap(sys::MmapRegion),
    Buffered(Vec<u8>),
}

impl Mapping {
    /// Maps `path` read-only. Empty files map to an empty slice without
    /// touching the OS mapping machinery (zero-length mappings are an error
    /// on most systems).
    pub fn map(path: impl AsRef<Path>) -> Result<Mapping> {
        let file = File::open(path.as_ref())?;
        let len = file.metadata()?.len();
        if len == 0 {
            return Ok(Mapping {
                inner: MappingInner::Buffered(Vec::new()),
            });
        }
        #[cfg(unix)]
        {
            if let Some(region) = sys::MmapRegion::new(&file, len as usize) {
                return Ok(Mapping {
                    inner: MappingInner::Mmap(region),
                });
            }
        }
        // Fallback (non-Unix, or the kernel refused the mapping): buffer.
        let mut buf = Vec::with_capacity(len as usize);
        use std::io::Read;
        let mut file = file;
        file.read_to_end(&mut buf)?;
        Ok(Mapping {
            inner: MappingInner::Buffered(buf),
        })
    }

    /// Whether this mapping is a true OS-level `mmap` (false = buffered
    /// fallback). Diagnostic only; behavior is identical either way.
    pub fn is_os_mapped(&self) -> bool {
        match &self.inner {
            #[cfg(unix)]
            MappingInner::Mmap(_) => true,
            MappingInner::Buffered(_) => false,
        }
    }
}

impl Deref for Mapping {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        match &self.inner {
            #[cfg(unix)]
            MappingInner::Mmap(region) => region.as_slice(),
            MappingInner::Buffered(buf) => buf,
        }
    }
}

#[cfg(unix)]
mod sys {
    //! Minimal read-only `mmap` binding, declared straight against libc
    //! (which every Rust binary on Unix already links).

    use std::ffi::{c_int, c_void};
    use std::fs::File;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: c_int = 1;
    const MAP_PRIVATE: c_int = 2;

    extern "C" {
        fn mmap(
            addr: *mut c_void,
            len: usize,
            prot: c_int,
            flags: c_int,
            fd: c_int,
            offset: i64,
        ) -> *mut c_void;
        fn munmap(addr: *mut c_void, len: usize) -> c_int;
    }

    /// An owned, read-only mapped region; unmapped on drop.
    #[derive(Debug)]
    pub(super) struct MmapRegion {
        ptr: *const u8,
        len: usize,
    }

    // The region is immutable shared memory: safe to read from any thread.
    unsafe impl Send for MmapRegion {}
    unsafe impl Sync for MmapRegion {}

    impl MmapRegion {
        /// Maps `len` bytes of `file` read-only; `None` when the kernel
        /// refuses (caller falls back to buffered reads).
        pub(super) fn new(file: &File, len: usize) -> Option<MmapRegion> {
            debug_assert!(len > 0);
            // SAFETY: NULL addr + PROT_READ + MAP_PRIVATE over a file we
            // hold open is the canonical read-only mapping; we check the
            // MAP_FAILED sentinel before using the pointer.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_PRIVATE,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 || ptr.is_null() {
                return None;
            }
            Some(MmapRegion {
                ptr: ptr as *const u8,
                len,
            })
        }

        pub(super) fn as_slice(&self) -> &[u8] {
            // SAFETY: the region stays mapped for the lifetime of self and
            // was created with exactly this length.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for MmapRegion {
        fn drop(&mut self) {
            // SAFETY: ptr/len came from a successful mmap of this length.
            unsafe {
                munmap(self.ptr as *mut c_void, self.len);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn maps_file_contents() {
        let dir = std::env::temp_dir().join("pai_mapped_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mapped.bin");
        let payload: Vec<u8> = (0..=255u8).cycle().take(10_000).collect();
        std::fs::write(&path, &payload).unwrap();
        let m = Mapping::map(&path).unwrap();
        assert_eq!(&m[..], &payload[..]);
        assert_eq!(m.len(), 10_000);
        #[cfg(unix)]
        assert!(m.is_os_mapped(), "unix should get a real mmap");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn empty_file_maps_to_empty_slice() {
        let dir = std::env::temp_dir().join("pai_mapped_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("empty.bin");
        std::fs::write(&path, b"").unwrap();
        let m = Mapping::map(&path).unwrap();
        assert!(m.is_empty());
        assert!(!m.is_os_mapped());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn mapping_is_shareable_across_threads() {
        let dir = std::env::temp_dir().join("pai_mapped_test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("shared.bin");
        std::fs::write(&path, vec![7u8; 4096]).unwrap();
        let m = std::sync::Arc::new(Mapping::map(&path).unwrap());
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = m.clone();
                s.spawn(move || assert!(m.iter().all(|&b| b == 7)));
            }
        });
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_file_is_an_error() {
        assert!(Mapping::map("/definitely/not/a/real/path.bin").is_err());
    }
}
