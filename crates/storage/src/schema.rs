//! Column schema of a raw data file.
//!
//! The exploration model requires at least two numeric attributes mapped to
//! the X and Y axes of the 2D visualization (e.g. longitude/latitude); the
//! remaining attributes are "non-axis" and are only materialized from the
//! file on demand. The schema records column names, types, and which pair
//! plays the axis role.

use pai_common::{AttrId, PaiError, Result};

/// Type of a raw-file column.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ColumnType {
    /// 64-bit float; the type of all aggregation targets.
    Float,
    /// 64-bit integer, handled as f64 on read (exact up to 2^53, which is
    /// far beyond the value ranges the generators produce).
    Integer,
    /// Free-form text; never indexed or aggregated, but the parser must be
    /// able to skip over it (real CSVs have such columns).
    Text,
}

impl ColumnType {
    /// True for types an aggregate can range over.
    pub fn is_numeric(&self) -> bool {
        matches!(self, ColumnType::Float | ColumnType::Integer)
    }
}

/// A single column definition.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Column {
    /// Column name (header name in CSV, stored verbatim in binary headers).
    pub name: String,
    /// Value type of the column.
    pub ty: ColumnType,
}

impl Column {
    /// A column with an explicit type.
    pub fn new(name: impl Into<String>, ty: ColumnType) -> Self {
        Column {
            name: name.into(),
            ty,
        }
    }

    /// A float-typed column.
    pub fn float(name: impl Into<String>) -> Self {
        Column::new(name, ColumnType::Float)
    }

    /// An integer-typed column (rides along as `f64` in binary formats).
    pub fn integer(name: impl Into<String>) -> Self {
        Column::new(name, ColumnType::Integer)
    }

    /// A text-typed column (CSV only; binary formats are numeric).
    pub fn text(name: impl Into<String>) -> Self {
        Column::new(name, ColumnType::Text)
    }
}

/// Schema of a raw file: ordered columns plus the (x, y) axis pair.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Schema {
    columns: Vec<Column>,
    x_axis: AttrId,
    y_axis: AttrId,
}

impl Schema {
    /// Builds and validates a schema.
    ///
    /// Rules: at least two columns; axis ids distinct, in range, and numeric;
    /// column names unique and non-empty.
    pub fn new(columns: Vec<Column>, x_axis: AttrId, y_axis: AttrId) -> Result<Self> {
        if columns.len() < 2 {
            return Err(PaiError::schema(
                "a schema needs at least two columns (the axis pair)",
            ));
        }
        if x_axis == y_axis {
            return Err(PaiError::schema("x and y axis must be distinct columns"));
        }
        for (role, id) in [("x", x_axis), ("y", y_axis)] {
            let col = columns.get(id).ok_or_else(|| {
                PaiError::schema(format!("{role}-axis column id {id} out of range"))
            })?;
            if !col.ty.is_numeric() {
                return Err(PaiError::schema(format!(
                    "{role}-axis column '{}' must be numeric",
                    col.name
                )));
            }
        }
        for (i, c) in columns.iter().enumerate() {
            if c.name.is_empty() {
                return Err(PaiError::schema(format!("column {i} has an empty name")));
            }
            if columns[..i].iter().any(|p| p.name == c.name) {
                return Err(PaiError::schema(format!(
                    "duplicate column name '{}'",
                    c.name
                )));
            }
        }
        Ok(Schema {
            columns,
            x_axis,
            y_axis,
        })
    }

    /// The paper's synthetic schema: `n_cols` float columns named
    /// `col0..colN`, with `col0`/`col1` as the axis pair.
    pub fn synthetic(n_cols: usize) -> Schema {
        assert!(n_cols >= 2, "synthetic schema needs >= 2 columns");
        let columns = (0..n_cols)
            .map(|i| Column::float(format!("col{i}")))
            .collect();
        Schema::new(columns, 0, 1).expect("synthetic schema is valid by construction")
    }

    /// The column definitions, in file order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of columns.
    pub fn len(&self) -> usize {
        self.columns.len()
    }

    /// True when the schema has no columns.
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Id of the column mapped to the X axis.
    pub fn x_axis(&self) -> AttrId {
        self.x_axis
    }

    /// Id of the column mapped to the Y axis.
    pub fn y_axis(&self) -> AttrId {
        self.y_axis
    }

    /// True when `attr` is one of the two axis columns (stored in the index,
    /// so queries over it never touch the file).
    pub fn is_axis(&self, attr: AttrId) -> bool {
        attr == self.x_axis || attr == self.y_axis
    }

    /// Looks a column up by name.
    pub fn column_id(&self, name: &str) -> Option<AttrId> {
        self.columns.iter().position(|c| c.name == name)
    }

    /// Returns the column for `attr`, or a schema error.
    pub fn column(&self, attr: AttrId) -> Result<&Column> {
        self.columns
            .get(attr)
            .ok_or_else(|| PaiError::schema(format!("column id {attr} out of range")))
    }

    /// Validates that `attr` exists and is numeric (aggregation target).
    pub fn require_numeric(&self, attr: AttrId) -> Result<()> {
        let col = self.column(attr)?;
        if !col.ty.is_numeric() {
            return Err(PaiError::schema(format!(
                "column '{}' is not numeric and cannot be aggregated",
                col.name
            )));
        }
        Ok(())
    }

    /// Ids of all non-axis numeric columns (the candidates for metadata).
    pub fn non_axis_numeric(&self) -> Vec<AttrId> {
        (0..self.columns.len())
            .filter(|&i| !self.is_axis(i) && self.columns[i].ty.is_numeric())
            .collect()
    }

    /// Header line for CSV output.
    pub fn header(&self) -> String {
        self.columns
            .iter()
            .map(|c| c.name.as_str())
            .collect::<Vec<_>>()
            .join(",")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_schema_shape() {
        let s = Schema::synthetic(10);
        assert_eq!(s.len(), 10);
        assert_eq!(s.x_axis(), 0);
        assert_eq!(s.y_axis(), 1);
        assert!(s.is_axis(0));
        assert!(s.is_axis(1));
        assert!(!s.is_axis(2));
        assert_eq!(s.non_axis_numeric(), (2..10).collect::<Vec<_>>());
        assert_eq!(s.column_id("col7"), Some(7));
        assert_eq!(s.column_id("nope"), None);
        assert!(s.header().starts_with("col0,col1,"));
    }

    #[test]
    fn rejects_identical_axes() {
        let cols = vec![Column::float("x"), Column::float("y")];
        assert!(Schema::new(cols, 0, 0).is_err());
    }

    #[test]
    fn rejects_text_axis() {
        let cols = vec![Column::text("name"), Column::float("y"), Column::float("v")];
        assert!(Schema::new(cols.clone(), 0, 1).is_err());
        assert!(Schema::new(cols, 1, 2).is_ok());
    }

    #[test]
    fn rejects_out_of_range_axis() {
        let cols = vec![Column::float("x"), Column::float("y")];
        assert!(Schema::new(cols, 0, 5).is_err());
    }

    #[test]
    fn rejects_duplicate_names() {
        let cols = vec![Column::float("x"), Column::float("x")];
        assert!(Schema::new(cols, 0, 1).is_err());
    }

    #[test]
    fn rejects_empty_name() {
        let cols = vec![Column::float("x"), Column::float("")];
        assert!(Schema::new(cols, 0, 1).is_err());
    }

    #[test]
    fn require_numeric_checks() {
        let cols = vec![
            Column::float("x"),
            Column::float("y"),
            Column::text("label"),
            Column::integer("n"),
        ];
        let s = Schema::new(cols, 0, 1).unwrap();
        assert!(s.require_numeric(3).is_ok());
        assert!(s.require_numeric(2).is_err());
        assert!(s.require_numeric(42).is_err());
        assert_eq!(s.non_axis_numeric(), vec![3]);
    }

    #[test]
    fn axes_need_not_be_first_columns() {
        let cols = vec![
            Column::text("id"),
            Column::float("lon"),
            Column::float("lat"),
            Column::float("rating"),
        ];
        let s = Schema::new(cols, 1, 2).unwrap();
        assert!(s.is_axis(1) && s.is_axis(2));
        assert_eq!(s.non_axis_numeric(), vec![3]);
    }
}
