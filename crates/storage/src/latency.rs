//! A latency-injecting wrapper backend: any [`RawFile`] behind a simulated
//! remote link.
//!
//! Object stores and remote block devices change the cost model of in-situ
//! exploration: each I/O *operation* pays a round trip, so batched fetches
//! (fewer `read_rows` calls) and zone-map pushdown (fewer blocks touched,
//! hence fewer operations) stop being byte-count niceties and start
//! dominating wall-clock. [`LatencyFile`] makes that cost model testable on
//! a laptop: it delegates every access to the wrapped backend and then
//! stalls the calling thread
//!
//! * a fixed `per_call` delay per access (the request round trip), plus
//! * `per_seek` for every seek the wrapped backend issued while serving it
//!   (one ranged GET per discontiguous span).
//!
//! Metering is transparent — the wrapper shares the inner file's
//! [`IoCounters`] — so reports show the same bytes/blocks while wall-clock
//! shows the remote story. Concurrent callers overlap their round trips
//! (exactly like real ranged GETs); every seek is charged to exactly one
//! in-flight access via a high-water mark over the shared seek counter, so
//! N concurrent callers never multiply the total stall by N.
//!
//! `LatencyFile` is the remote *cost model*; the remote *transport* —
//! actual HTTP range requests with coalescing and retry — is
//! [`crate::HttpFile`] (see [`crate::remote`]).

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use pai_common::geometry::Rect;
use pai_common::{AttrId, IoCounters, Result, RowLocator};

use crate::raw::{BlockStats, BlockSynopsis, RawFile, RowHandler, ScanPartition};
use crate::schema::Schema;

/// A [`RawFile`] that adds configurable per-operation latency to another
/// backend. See the module docs for the cost model.
pub struct LatencyFile {
    inner: Box<dyn RawFile>,
    per_call: Duration,
    per_seek: Duration,
    /// High-water mark of the inner seek counter already charged to some
    /// access; the gap to the live counter is what the next stall pays.
    charged_seeks: AtomicU64,
}

impl LatencyFile {
    /// Wraps `inner`, stalling `per_call` on every access plus `per_seek`
    /// per seek the access needed.
    pub fn new(inner: Box<dyn RawFile>, per_call: Duration, per_seek: Duration) -> Self {
        LatencyFile {
            inner,
            per_call,
            per_seek,
            charged_seeks: AtomicU64::new(0),
        }
    }

    /// The configured per-access delay.
    pub fn per_call(&self) -> Duration {
        self.per_call
    }

    /// The configured per-seek delay.
    pub fn per_seek(&self) -> Duration {
        self.per_seek
    }

    /// Stalls for one finished access: the per-call round trip plus
    /// `per_seek` for every not-yet-charged seek on the shared counter.
    /// The high-water mark hands each seek to exactly one concurrent
    /// caller (a counter `reset()` simply leaves seeks uncharged until the
    /// counter catches back up).
    fn stall(&self) {
        let total = self.inner.counters().seeks();
        let prev = self.charged_seeks.fetch_max(total, Ordering::AcqRel);
        let seeks = total.saturating_sub(prev);
        let d = self.per_call + self.per_seek * seeks as u32;
        if !d.is_zero() {
            std::thread::sleep(d);
        }
    }
}

impl RawFile for LatencyFile {
    fn schema(&self) -> &Schema {
        self.inner.schema()
    }

    fn counters(&self) -> &IoCounters {
        self.inner.counters()
    }

    fn size_bytes(&self) -> u64 {
        self.inner.size_bytes()
    }

    fn scan(&self, handler: &mut RowHandler<'_>) -> Result<()> {
        let res = self.inner.scan(handler);
        self.stall();
        res
    }

    fn read_rows(&self, locators: &[RowLocator], attrs: &[AttrId]) -> Result<Vec<Vec<f64>>> {
        let res = self.inner.read_rows(locators, attrs);
        self.stall();
        res
    }

    fn partitions(&self, n: usize) -> Result<Vec<ScanPartition>> {
        self.inner.partitions(n)
    }

    fn scan_partition(&self, partition: ScanPartition, handler: &mut RowHandler<'_>) -> Result<()> {
        let res = self.inner.scan_partition(partition, handler);
        self.stall();
        res
    }

    fn block_stats(&self) -> Option<&[BlockStats]> {
        self.inner.block_stats()
    }

    fn block_synopses(&self) -> Option<&[BlockSynopsis]> {
        self.inner.block_synopses()
    }

    fn value_bytes_hint(&self) -> Option<f64> {
        self.inner.value_bytes_hint()
    }

    fn scan_filtered(&self, window: &Rect, handler: &mut RowHandler<'_>) -> Result<()> {
        let res = self.inner.scan_filtered(window, handler);
        self.stall();
        res
    }

    fn read_rows_window(
        &self,
        locators: &[RowLocator],
        attrs: &[AttrId],
        window: Option<&Rect>,
    ) -> Result<Vec<Vec<f64>>> {
        let res = self.inner.read_rows_window(locators, attrs, window);
        self.stall();
        res
    }

    fn attach_cache(&self, cache: std::sync::Arc<crate::cache::BlockCache>) -> bool {
        self.inner.attach_cache(cache)
    }

    fn append_rows(&self, rows: &[Vec<f64>]) -> Result<crate::raw::AppendReceipt> {
        let res = self.inner.append_rows(rows);
        self.stall();
        res
    }

    fn invalidate_cache(&self) -> u64 {
        self.inner.invalidate_cache()
    }

    fn compact_once(
        &self,
        domain: &Rect,
        min_run: usize,
    ) -> Result<Option<crate::raw::CompactionReport>> {
        // The rewrite happens inside the wrapped backend (no extra link
        // round trip beyond what its own accesses pay), so no stall here.
        self.inner.compact_once(domain, min_run)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Schema, ZoneFile};
    use pai_common::RowLocator;
    use std::time::Instant;

    fn striped(n: u64) -> ZoneFile {
        let data: Vec<Vec<f64>> = (0..n)
            .map(|i| vec![i as f64, (i % 7) as f64, i as f64 * 10.0])
            .collect();
        ZoneFile::from_rows_with_block(&Schema::synthetic(3), data, 4).unwrap()
    }

    fn wrap(per_call_ms: u64, per_seek_ms: u64) -> LatencyFile {
        LatencyFile::new(
            Box::new(striped(64)),
            Duration::from_millis(per_call_ms),
            Duration::from_millis(per_seek_ms),
        )
    }

    #[test]
    fn delegates_data_and_shares_counters() {
        let f = wrap(0, 0);
        assert_eq!(f.schema().len(), 3);
        let locs: Vec<RowLocator> = (0..4).map(RowLocator::new).collect();
        let vals = f.read_rows(&locs, &[2]).unwrap();
        assert_eq!(vals[3], vec![30.0]);
        assert_eq!(f.counters().objects_read(), 4, "inner meters visible");
        assert!(f.block_stats().is_some(), "zone maps pass through");

        let mut rows = 0;
        f.scan(&mut |_, _, _| {
            rows += 1;
            Ok(())
        })
        .unwrap();
        assert_eq!(rows, 64);
    }

    #[test]
    fn per_call_latency_is_paid_per_access() {
        let f = wrap(20, 0);
        let locs = [RowLocator::new(0)];
        let t0 = Instant::now();
        f.read_rows(&locs, &[2]).unwrap();
        f.read_rows(&locs, &[2]).unwrap();
        assert!(
            t0.elapsed() >= Duration::from_millis(40),
            "two calls pay two round trips"
        );
    }

    #[test]
    fn concurrent_callers_split_seek_charges_instead_of_multiplying() {
        // 4 threads × 16 single-row reads, 1 seek each, per_seek = 2ms:
        // 64 seeks total = 128ms of charge, overlapped 4 ways ≈ 32ms/thread.
        // Charging each call for every *other* in-flight caller's seeks
        // (the shared-counter-delta bug) would bill ~4 seeks per call —
        // ~128ms of sleep per thread. The high-water mark must keep each
        // thread's bill near its own share.
        let f = wrap(0, 2);
        let t0 = Instant::now();
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let f = &f;
                s.spawn(move || {
                    for i in 0..16u64 {
                        // Scattered rows: one seek per read.
                        let loc = [RowLocator::new((t * 16 + i) % 64)];
                        f.read_rows(&loc, &[2]).unwrap();
                    }
                });
            }
        });
        let elapsed = t0.elapsed();
        assert!(
            elapsed < Duration::from_millis(90),
            "cross-charging detected: {elapsed:?} (expected ~32-60ms)"
        );
    }

    #[test]
    fn pushdown_saves_wall_clock_under_seek_latency() {
        let window = Rect::new(20.0, 30.0, -1.0, 8.0);
        // Full scan: every stripe decoded, 3 seeks per stripe.
        let full = wrap(0, 2);
        let t0 = Instant::now();
        full.scan(&mut |_, _, _| Ok(())).unwrap();
        let full_elapsed = t0.elapsed();
        // Filtered scan: ~3 of 16 stripes survive the zone maps.
        let filtered = wrap(0, 2);
        let t0 = Instant::now();
        filtered
            .scan_filtered(&window, &mut |_, _, _| Ok(()))
            .unwrap();
        let filtered_elapsed = t0.elapsed();
        assert!(
            filtered_elapsed * 2 < full_elapsed,
            "block skipping must dodge the per-seek latency: {filtered_elapsed:?} vs {full_elapsed:?}"
        );
        assert!(filtered.counters().blocks_skipped() > 0);
    }
}
