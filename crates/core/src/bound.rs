//! The relative upper error bound (§3.1, "Upper Error Bound").
//!
//! The paper derives the bound "by normalizing the maximum difference
//! between the approximate value computed and the query confidence interval
//! bounds" but leaves the normalization denominator open. We default to the
//! magnitude of the approximate value (the usual relative-error reading),
//! with a documented fallback chain for near-zero estimates; both choices
//! are configurable so the benchmark harness can ablate them.

/// Denominator used to turn the absolute CI half-width into a relative
/// error bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum NormalizationMode {
    /// `|estimate|`, falling back to the largest CI endpoint magnitude when
    /// the estimate is ~0, and to plain absolute error when the whole
    /// interval is ~0. The default.
    #[default]
    Estimate,
    /// Largest endpoint magnitude `max(|lo|, |hi|)` — stable when estimates
    /// cross zero.
    IntervalMagnitude,
    /// No normalization: the bound is the absolute maximum deviation.
    Absolute,
}

/// Magnitudes below this are treated as zero for normalization purposes.
const EPS: f64 = 1e-12;

impl NormalizationMode {
    /// The denominator for an estimate `v` inside interval `[lo, hi]`.
    /// Returns `None` when the mode degrades to absolute error.
    fn denominator(&self, v: f64, lo: f64, hi: f64) -> Option<f64> {
        match self {
            NormalizationMode::Absolute => None,
            NormalizationMode::IntervalMagnitude => {
                let m = lo.abs().max(hi.abs());
                (m > EPS).then_some(m)
            }
            NormalizationMode::Estimate => {
                if v.abs() > EPS {
                    Some(v.abs())
                } else {
                    let m = lo.abs().max(hi.abs());
                    (m > EPS).then_some(m)
                }
            }
        }
    }
}

/// The upper error bound for an estimate `v` with confidence interval
/// `[lo, hi]`: the worst-case deviation of the true value from `v`,
/// normalized per `mode`.
///
/// Guarantees: for any true value `t ∈ [lo, hi]`,
/// `relative_error(v, t, ...) <= upper_error_bound(v, lo, hi, ...)`.
pub fn upper_error_bound(v: f64, lo: f64, hi: f64, mode: NormalizationMode) -> f64 {
    debug_assert!(lo <= hi, "inverted interval [{lo}, {hi}]");
    let max_dev = (v - lo).abs().max((hi - v).abs());
    match mode.denominator(v, lo, hi) {
        Some(d) => max_dev / d,
        None => max_dev,
    }
}

/// The realized error of estimate `v` against the true value, normalized the
/// same way as [`upper_error_bound`] (so the two are directly comparable).
pub fn relative_error(v: f64, truth: f64, lo: f64, hi: f64, mode: NormalizationMode) -> f64 {
    let dev = (v - truth).abs();
    match mode.denominator(v, lo, hi) {
        Some(d) => dev / d,
        None => dev,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn bound_basics() {
        // Estimate 10 in [8, 14]: max deviation 4, relative 0.4.
        let b = upper_error_bound(10.0, 8.0, 14.0, NormalizationMode::Estimate);
        assert!((b - 0.4).abs() < 1e-12);
        let abs = upper_error_bound(10.0, 8.0, 14.0, NormalizationMode::Absolute);
        assert_eq!(abs, 4.0);
    }

    #[test]
    fn point_interval_gives_zero_bound() {
        assert_eq!(
            upper_error_bound(5.0, 5.0, 5.0, NormalizationMode::Estimate),
            0.0
        );
    }

    #[test]
    fn near_zero_estimate_falls_back_to_interval_magnitude() {
        let b = upper_error_bound(0.0, -2.0, 4.0, NormalizationMode::Estimate);
        // max deviation 4, magnitude 4 -> 1.0
        assert!((b - 1.0).abs() < 1e-12);
    }

    #[test]
    fn all_zero_degrades_to_absolute() {
        let b = upper_error_bound(0.0, 0.0, 0.0, NormalizationMode::Estimate);
        assert_eq!(b, 0.0);
    }

    #[test]
    fn interval_magnitude_mode() {
        let b = upper_error_bound(1.0, -10.0, 2.0, NormalizationMode::IntervalMagnitude);
        assert!((b - 1.1).abs() < 1e-12); // max dev 11, magnitude 10
    }

    #[test]
    fn realized_error_comparable() {
        let (v, lo, hi) = (10.0, 8.0, 14.0);
        let e = relative_error(v, 12.0, lo, hi, NormalizationMode::Estimate);
        assert!((e - 0.2).abs() < 1e-12);
    }

    proptest! {
        /// The bound dominates the realized error for every truth in the CI,
        /// in every normalization mode.
        #[test]
        fn prop_bound_dominates_error(
            lo in -1e6f64..1e6,
            w in 0.0f64..1e6,
            fv in 0.0f64..=1.0,
            ft in 0.0f64..=1.0,
            mode_ix in 0usize..3,
        ) {
            let hi = lo + w;
            let v = lo + fv * w;
            let truth = lo + ft * w;
            let mode = [
                NormalizationMode::Estimate,
                NormalizationMode::IntervalMagnitude,
                NormalizationMode::Absolute,
            ][mode_ix];
            let bound = upper_error_bound(v, lo, hi, mode);
            let err = relative_error(v, truth, lo, hi, mode);
            prop_assert!(err <= bound + 1e-9, "err={err} bound={bound}");
        }

        /// Midpoint estimates minimize the bound over all in-interval
        /// estimates (for absolute normalization).
        #[test]
        fn prop_midpoint_minimizes_absolute_bound(
            lo in -1e6f64..1e6, w in 0.0f64..1e6, f in 0.0f64..=1.0,
        ) {
            let hi = lo + w;
            let mid = lo + w / 2.0;
            let v = lo + f * w;
            let bm = upper_error_bound(mid, lo, hi, NormalizationMode::Absolute);
            let bv = upper_error_bound(v, lo, hi, NormalizationMode::Absolute);
            prop_assert!(bm <= bv + 1e-9);
        }
    }
}
