//! Tile-selection policies (§3.1, "Processing Partially Contained Tiles").
//!
//! The paper scores each candidate tile as
//! `s(t) = α·ŵ(t) + (1−α)/ĉ(t)` with `ŵ` (tile-CI width) and `ĉ`
//! (`count(t∩Q)`, the processing-cost proxy) normalized to `[0, 1]`, then
//! processes tiles in descending score order until the constraint is met.
//! As written the inverse-count term is unbounded for tiny counts, so we
//! normalize it onto `[0, 1]` too (`c_min/c(t)`); for the paper's evaluated
//! setting α = 1 the two readings coincide.
//!
//! Besides the paper's policy we ship ablation baselines: pure
//! benefit/cost greedy, random order, and the α-extremes.

use pai_common::{PaiError, Result};

/// A candidate as seen by a policy: its current interval width (already
/// reduced over the query's aggregates), its cost proxy, and whether it is
/// unbounded (no metadata at all — always top priority).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CandidateView {
    /// Width of the tile's contribution interval (∞ when unbounded).
    pub width: f64,
    /// `count(t∩Q)` — the paper's processing-cost proxy.
    pub selected: u64,
    /// The real I/O cost of processing: objects that would be read
    /// (selected for window-only reads, whole tile for full reads).
    pub cost: u64,
}

/// Strategy choosing which candidate tile to process next.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum SelectionPolicy {
    /// The paper's score `s(t) = α·ŵ(t) + (1−α)·(ĉ_min/ĉ(t))`.
    /// `α = 1` (width only) is the paper's evaluated configuration.
    ScoreGreedy { alpha: f64 },
    /// Maximize width-per-cost `w(t)/cost(t)` — a knapsack-style greedy
    /// that explicitly prices the I/O of processing a tile.
    CostBenefit,
    /// Deterministic pseudo-random order (ablation floor).
    Random { seed: u64 },
}

impl Default for SelectionPolicy {
    fn default() -> Self {
        // The paper's evaluation sets α = 1.
        SelectionPolicy::ScoreGreedy { alpha: 1.0 }
    }
}

impl SelectionPolicy {
    pub fn validate(&self) -> Result<()> {
        if let SelectionPolicy::ScoreGreedy { alpha } = self {
            if !(0.0..=1.0).contains(alpha) || alpha.is_nan() {
                return Err(PaiError::config(format!(
                    "score alpha must lie in [0, 1], got {alpha}"
                )));
            }
        }
        Ok(())
    }

    /// Short name for reports.
    pub fn name(&self) -> String {
        match self {
            SelectionPolicy::ScoreGreedy { alpha } => format!("score(alpha={alpha})"),
            SelectionPolicy::CostBenefit => "cost-benefit".into(),
            SelectionPolicy::Random { .. } => "random".into(),
        }
    }

    /// Picks the index of the candidate to process next. `step` is the
    /// number of tiles already processed for this query (for deterministic
    /// randomness).
    ///
    /// # Panics
    /// Panics on an empty candidate slice — the engine never asks then.
    pub fn pick(&self, candidates: &[CandidateView], step: usize) -> usize {
        assert!(!candidates.is_empty(), "policy asked to pick from nothing");
        // Unbounded candidates block any finite error bound: handle first.
        if let Some(i) = candidates.iter().position(|c| c.width.is_infinite()) {
            return i;
        }
        match *self {
            SelectionPolicy::ScoreGreedy { alpha } => {
                let w_max = candidates.iter().map(|c| c.width).fold(0.0f64, f64::max);
                let c_min = candidates
                    .iter()
                    .map(|c| c.selected.max(1))
                    .min()
                    .expect("nonempty");
                argmax(candidates.iter().map(|c| {
                    let w_norm = if w_max > 0.0 { c.width / w_max } else { 0.0 };
                    let inv_cost = c_min as f64 / c.selected.max(1) as f64;
                    alpha * w_norm + (1.0 - alpha) * inv_cost
                }))
            }
            SelectionPolicy::CostBenefit => {
                argmax(candidates.iter().map(|c| c.width / c.cost.max(1) as f64))
            }
            SelectionPolicy::Random { seed } => {
                (splitmix64(seed ^ (step as u64).wrapping_mul(0x9E3779B97F4A7C15))
                    % candidates.len() as u64) as usize
            }
        }
    }
}

impl SelectionPolicy {
    /// Picks up to `k` of `n` candidates in **sequential processing
    /// order**: the batch is exactly the prefix the one-at-a-time loop
    /// would have processed, so a batched engine that applies the picks in
    /// order (re-checking its stop rule after each) reproduces the
    /// sequential trajectory.
    ///
    /// Because processing a tile changes the relative scores of the
    /// remaining candidates (score normalization is computed over the
    /// still-open set), the caller supplies `views_for`, which builds the
    /// policy views for any subset of candidates — `alive` holds original
    /// candidate indices, in the same swap-remove order the engine's state
    /// uses, so deterministic policies (e.g. [`SelectionPolicy::Random`])
    /// see exactly the slices the sequential loop would have seen.
    pub fn pick_batch(
        &self,
        n: usize,
        step: usize,
        k: usize,
        mut views_for: impl FnMut(&[usize]) -> Vec<CandidateView>,
    ) -> Vec<usize> {
        let mut alive: Vec<usize> = (0..n).collect();
        let mut out = Vec::with_capacity(k.min(n));
        let mut step = step;
        while out.len() < k && !alive.is_empty() {
            let views = views_for(&alive);
            debug_assert_eq!(views.len(), alive.len());
            let i = self.pick(&views, step);
            out.push(alive[i]);
            alive.swap_remove(i);
            step += 1;
        }
        out
    }
}

fn argmax(scores: impl Iterator<Item = f64>) -> usize {
    let mut best = 0;
    let mut best_score = f64::NEG_INFINITY;
    for (i, s) in scores.enumerate() {
        if s > best_score {
            best_score = s;
            best = i;
        }
    }
    best
}

/// SplitMix64 — tiny, deterministic, good-enough mixing for the random
/// baseline (no `rand` dependency needed here).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn views(specs: &[(f64, u64)]) -> Vec<CandidateView> {
        specs
            .iter()
            .map(|&(width, selected)| CandidateView {
                width,
                selected,
                cost: selected,
            })
            .collect()
    }

    #[test]
    fn validation() {
        assert!(SelectionPolicy::ScoreGreedy { alpha: 0.5 }
            .validate()
            .is_ok());
        assert!(SelectionPolicy::ScoreGreedy { alpha: -0.1 }
            .validate()
            .is_err());
        assert!(SelectionPolicy::ScoreGreedy { alpha: 1.1 }
            .validate()
            .is_err());
        assert!(SelectionPolicy::ScoreGreedy { alpha: f64::NAN }
            .validate()
            .is_err());
        assert!(SelectionPolicy::CostBenefit.validate().is_ok());
    }

    #[test]
    fn alpha_one_picks_widest() {
        let p = SelectionPolicy::ScoreGreedy { alpha: 1.0 };
        let cands = views(&[(5.0, 100), (20.0, 1000), (1.0, 1)]);
        assert_eq!(p.pick(&cands, 0), 1);
    }

    #[test]
    fn alpha_zero_picks_cheapest() {
        let p = SelectionPolicy::ScoreGreedy { alpha: 0.0 };
        let cands = views(&[(5.0, 100), (20.0, 1000), (1.0, 3)]);
        assert_eq!(p.pick(&cands, 0), 2);
    }

    #[test]
    fn blended_alpha_trades_off() {
        // Candidate 0: widest but expensive. Candidate 1: cheap but narrow.
        let cands = views(&[(10.0, 1000), (6.0, 10)]);
        assert_eq!(
            SelectionPolicy::ScoreGreedy { alpha: 1.0 }.pick(&cands, 0),
            0
        );
        assert_eq!(
            SelectionPolicy::ScoreGreedy { alpha: 0.0 }.pick(&cands, 0),
            1
        );
        // Mid alpha: candidate 1 scores 0.5*0.6 + 0.5*1.0 = 0.8 vs
        // candidate 0: 0.5*1.0 + 0.5*0.01 = 0.505.
        assert_eq!(
            SelectionPolicy::ScoreGreedy { alpha: 0.5 }.pick(&cands, 0),
            1
        );
    }

    #[test]
    fn unbounded_goes_first_in_every_policy() {
        let mut cands = views(&[(5.0, 10), (7.0, 20)]);
        cands.push(CandidateView {
            width: f64::INFINITY,
            selected: 9999,
            cost: 9999,
        });
        for p in [
            SelectionPolicy::ScoreGreedy { alpha: 1.0 },
            SelectionPolicy::CostBenefit,
            SelectionPolicy::Random { seed: 1 },
        ] {
            assert_eq!(p.pick(&cands, 0), 2, "{}", p.name());
        }
    }

    #[test]
    fn cost_benefit_ratio() {
        // widths/cost: 10/100=0.1 vs 5/10=0.5 vs 20/500=0.04.
        let cands = views(&[(10.0, 100), (5.0, 10), (20.0, 500)]);
        assert_eq!(SelectionPolicy::CostBenefit.pick(&cands, 0), 1);
    }

    #[test]
    fn random_is_deterministic_and_in_range() {
        let p = SelectionPolicy::Random { seed: 42 };
        let cands = views(&[(1.0, 1), (2.0, 2), (3.0, 3), (4.0, 4)]);
        let picks: Vec<usize> = (0..10).map(|s| p.pick(&cands, s)).collect();
        let again: Vec<usize> = (0..10).map(|s| p.pick(&cands, s)).collect();
        assert_eq!(picks, again);
        assert!(picks.iter().all(|&i| i < 4));
        // Different steps shouldn't all collapse to one index.
        assert!(picks.iter().collect::<std::collections::HashSet<_>>().len() > 1);
    }

    #[test]
    fn zero_widths_fall_back_gracefully() {
        let p = SelectionPolicy::ScoreGreedy { alpha: 1.0 };
        let cands = views(&[(0.0, 10), (0.0, 5)]);
        // All scores equal(0); first index wins; must not panic or NaN.
        assert_eq!(p.pick(&cands, 0), 0);
    }

    #[test]
    #[should_panic(expected = "pick from nothing")]
    fn empty_candidates_panic() {
        SelectionPolicy::default().pick(&[], 0);
    }

    /// Simulates the engine's swap-remove bookkeeping for a candidate set
    /// whose views do not change as candidates are removed.
    fn static_views_for(all: &[CandidateView]) -> impl FnMut(&[usize]) -> Vec<CandidateView> + '_ {
        move |alive: &[usize]| alive.iter().map(|&i| all[i]).collect()
    }

    #[test]
    fn pick_batch_is_sequential_prefix() {
        let all = views(&[(5.0, 100), (20.0, 1000), (1.0, 1), (7.0, 10)]);
        for policy in [
            SelectionPolicy::ScoreGreedy { alpha: 1.0 },
            SelectionPolicy::ScoreGreedy { alpha: 0.5 },
            SelectionPolicy::CostBenefit,
            SelectionPolicy::Random { seed: 9 },
        ] {
            // Reference: run the sequential loop by hand.
            let mut alive: Vec<usize> = (0..all.len()).collect();
            let mut sequential = Vec::new();
            for step in 0..all.len() {
                let sub: Vec<CandidateView> = alive.iter().map(|&i| all[i]).collect();
                let i = policy.pick(&sub, step);
                sequential.push(alive[i]);
                alive.swap_remove(i);
            }
            for k in 1..=all.len() {
                let batch = policy.pick_batch(all.len(), 0, k, static_views_for(&all));
                assert_eq!(batch, sequential[..k], "{} k={k}", policy.name());
            }
        }
    }

    #[test]
    fn pick_batch_clamps_to_candidate_count() {
        let all = views(&[(5.0, 10), (2.0, 20)]);
        let p = SelectionPolicy::default();
        let batch = p.pick_batch(all.len(), 0, 99, static_views_for(&all));
        assert_eq!(batch.len(), 2);
        assert_eq!(
            batch.iter().collect::<std::collections::HashSet<_>>().len(),
            2,
            "no duplicates"
        );
        assert!(p
            .pick_batch(0, 0, 4, |_alive| unreachable!("no candidates to view"))
            .is_empty());
    }
}
