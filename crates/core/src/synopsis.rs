//! Synopsis-first evaluation: zero-I/O approximate answers from per-block
//! synopses.
//!
//! Zone maps can only *prune* blocks; the per-block synopses behind
//! [`RawFile::block_synopses`] (count/sum/sum-of-squares moments plus an
//! equi-width histogram per column) can *answer*. Before any fetch is
//! planned, the engine composes
//!
//! * **fully-covered** blocks (envelope provably inside the half-open query
//!   window on both axes, no NULL axis values) — their moments fold in
//!   *exactly*, like a fully-contained tile with exact metadata;
//! * **partially-covered** blocks — the histogram mass of the window's axis
//!   ranges bounds the selected count to an interval, which multiplies the
//!   column's value envelope into a sign-aware sum-contribution interval,
//!
//! into one [`AggregateEstimate`] per aggregate, mirroring the paper's
//! confidence-interval formulas in [`crate::ci`] block-wise instead of
//! tile-wise. The exact selected count (`count(t∩Q)` from indexed axis
//! values) tightens every partial block's count interval globally: the
//! intervals must sum to the count the index already knows.
//!
//! When the combined upper error bound already meets the query's `φ`, the
//! answer returns with **zero data I/O** — no fetch planned, no GET issued,
//! `fetch_wall_us == 0` — and the `synopsis_hits`/`synopsis_blocks`/
//! `synopsis_bytes` meters tick. Otherwise evaluation falls through to the
//! normal plan → fetch → apply adaptation path unchanged, after seeding
//! global attribute bounds for `MetadataPolicy::None` cold starts (see
//! [`seed_missing_global_bounds`]).

use pai_common::geometry::Rect;
use pai_common::{AggregateFunction, AggregateValue, AttrId, Interval, Result};
use pai_index::eval::query_attrs;
use pai_index::{ReadPolicy, ValinorIndex};
use pai_storage::raw::{BlockSynopsis, RawFile};

use crate::ci::AggregateEstimate;
use crate::config::{EngineConfig, ValueEstimator};
use crate::state::CandidateKind;

/// A synopsis-only answer: one estimate per aggregate plus the accounting
/// the meters need.
#[derive(Debug, Clone)]
pub(crate) struct SynopsisAnswer {
    /// One estimate per requested aggregate, in query order.
    pub estimates: Vec<AggregateEstimate>,
    /// Blocks whose synopsis contributed (covered + partial).
    pub blocks: u64,
    /// Approximate in-memory bytes of those synopses.
    pub bytes: u64,
}

/// Attempts to answer the query purely from block synopses. Returns `None`
/// when the synopses cannot produce a bounded estimate for some aggregate
/// (corrupt envelope, no certain extremum contribution, or counts
/// inconsistent with the index's exact selected total) — the caller then
/// falls through to the normal adaptation path.
pub(crate) fn try_answer(
    blocks: &[BlockSynopsis],
    x_axis: AttrId,
    y_axis: AttrId,
    window: &Rect,
    selected_total: u64,
    aggs: &[AggregateFunction],
    config: &EngineConfig,
) -> Option<SynopsisAnswer> {
    let (covered, partial) = classify_blocks(blocks, x_axis, y_axis, window, selected_total)?;
    let estimates = aggs
        .iter()
        .map(|agg| estimate_one(agg, blocks, &covered, &partial, selected_total, config))
        .collect::<Option<Vec<_>>>()?;
    let bytes = covered
        .iter()
        .copied()
        .chain(partial.iter().map(|p| p.0))
        .map(|i| blocks[i].approx_bytes())
        .sum();
    Some(SynopsisAnswer {
        estimates,
        blocks: (covered.len() + partial.len()) as u64,
        bytes,
    })
}

/// Splits the blocks into fully-covered indices and partially-covered
/// `(index, count_lo, count_hi)` triples, dropping blocks provably outside
/// the window. The partial count intervals are tightened against the exact
/// remaining selected count (they must sum to it); inconsistency — possible
/// only with unsound synopses — refuses the answer instead of reporting an
/// unsound interval.
#[allow(clippy::type_complexity)]
fn classify_blocks(
    blocks: &[BlockSynopsis],
    x_axis: AttrId,
    y_axis: AttrId,
    window: &Rect,
    selected_total: u64,
) -> Option<(Vec<usize>, Vec<(usize, u64, u64)>)> {
    let mut covered = Vec::new();
    let mut partial: Vec<(usize, u64, u64)> = Vec::new();
    let mut covered_rows = 0u64;
    for (i, b) in blocks.iter().enumerate() {
        if b.cols.len() <= x_axis.max(y_axis) {
            return None;
        }
        if b.covered_by(x_axis, y_axis, window) {
            covered_rows += b.rows();
            covered.push(i);
        } else {
            let (lo, hi) = b.selected_mass(x_axis, y_axis, window);
            if hi > 0 {
                partial.push((i, lo, hi));
            }
        }
    }
    let remaining = selected_total.checked_sub(covered_rows)?;
    let s_lo: u64 = partial.iter().map(|p| p.1).sum();
    let s_hi: u64 = partial.iter().map(|p| p.2).sum();
    if remaining < s_lo || remaining > s_hi {
        return None;
    }
    for p in partial.iter_mut() {
        let others_hi = s_hi - p.2;
        let others_lo = s_lo - p.1;
        p.1 = p.1.max(remaining.saturating_sub(others_hi));
        p.2 = p.2.min(remaining - others_lo);
    }
    Some((covered, partial))
}

/// One aggregate's synopsis estimate, mirroring [`crate::ci`]'s formulas
/// block-wise. `None` means this aggregate cannot be bounded from the
/// synopses (the whole attempt is then abandoned).
fn estimate_one(
    agg: &AggregateFunction,
    blocks: &[BlockSynopsis],
    covered: &[usize],
    partial: &[(usize, u64, u64)],
    n: u64,
    config: &EngineConfig,
) -> Option<AggregateEstimate> {
    let est = config.estimator;
    let non_null = config.assume_non_null;
    if let AggregateFunction::Count = agg {
        return Some(AggregateEstimate {
            value: AggregateValue::Count(n),
            ci: Some(Interval::point(n as f64)),
            unbounded: false,
        });
    }
    if n == 0 {
        // Mirror `estimate_aggregate` on an empty selection: sums are
        // exactly zero, everything else is Empty.
        return Some(match agg {
            AggregateFunction::Sum(_) => AggregateEstimate {
                value: AggregateValue::Float(0.0),
                ci: Some(Interval::point(0.0)),
                unbounded: false,
            },
            _ => AggregateEstimate {
                value: AggregateValue::Empty,
                ci: None,
                unbounded: false,
            },
        });
    }
    match *agg {
        AggregateFunction::Count => unreachable!("handled above"),
        AggregateFunction::Sum(a) => sum_estimate(a, blocks, covered, partial, est),
        AggregateFunction::Mean(a) => {
            if non_null {
                let sum = sum_estimate(a, blocks, covered, partial, est)?;
                let ci = sum.ci?.div_scalar(n as f64);
                let v = match sum.value {
                    AggregateValue::Float(v) => ci.clamp(v / n as f64),
                    _ => ci.midpoint(),
                };
                Some(AggregateEstimate {
                    value: AggregateValue::Float(v),
                    ci: Some(ci),
                    unbounded: false,
                })
            } else {
                let h = value_hull(a, blocks, covered, partial)?;
                Some(AggregateEstimate {
                    value: AggregateValue::Float(est.pick(&h)),
                    ci: Some(h),
                    unbounded: false,
                })
            }
        }
        AggregateFunction::Min(a) => {
            extremum_estimate(a, blocks, covered, partial, est, non_null, true)
        }
        AggregateFunction::Max(a) => {
            extremum_estimate(a, blocks, covered, partial, est, non_null, false)
        }
        AggregateFunction::Variance(a) => {
            variance_estimate(a, blocks, covered, partial, est, false)
        }
        AggregateFunction::StdDev(a) => variance_estimate(a, blocks, covered, partial, est, true),
    }
}

/// Column envelope of a block, `None` when the column holds no (non-NULL)
/// values there. A corrupt (inverted/NaN) envelope maps to `None` too — the
/// caller treats the attempt as unanswerable where that matters.
fn envelope(col: &pai_storage::ColumnSynopsis) -> Option<Interval> {
    (col.count > 0 && col.min <= col.max).then(|| Interval::new(col.min, col.max))
}

/// Sum: exact moments over covered blocks plus sign-aware
/// `count-interval × value-envelope` contributions over partial blocks.
fn sum_estimate(
    a: AttrId,
    blocks: &[BlockSynopsis],
    covered: &[usize],
    partial: &[(usize, u64, u64)],
    est: ValueEstimator,
) -> Option<AggregateEstimate> {
    let mut exact = 0.0;
    for &i in covered {
        exact += blocks[i].cols[a].sum;
    }
    let mut ci = Interval::point(exact);
    let mut estimate = exact;
    for &(i, c_lo, c_hi) in partial {
        let iv = partial_sum_bounds(&blocks[i], a, c_lo, c_hi)?;
        estimate += est.pick(&iv);
        ci = ci.add(&iv);
    }
    Some(AggregateEstimate {
        value: AggregateValue::Float(ci.clamp(estimate)),
        ci: Some(ci),
        unbounded: false,
    })
}

/// Bounds on the sum contributed by a partial block whose selected count
/// lies in `[c_lo, c_hi]`. Each selected row contributes a value inside the
/// column envelope — or nothing at all when the column has NULLs there, so
/// the per-value range widens to include 0.
fn partial_sum_bounds(b: &BlockSynopsis, a: AttrId, c_lo: u64, c_hi: u64) -> Option<Interval> {
    let col = &b.cols[a];
    if col.count == 0 {
        // Every value in the block is NULL: selected rows contribute 0.
        return Some(Interval::point(0.0));
    }
    let mut iv = envelope(col)?;
    if col.count < b.rows() {
        iv = iv.hull(&Interval::point(0.0));
    }
    let (vl, vh) = (iv.lo(), iv.hi());
    let lo = if vl >= 0.0 {
        c_lo as f64 * vl
    } else {
        c_hi as f64 * vl
    };
    let hi = if vh >= 0.0 {
        c_hi as f64 * vh
    } else {
        c_lo as f64 * vh
    };
    Some(Interval::new(lo, hi))
}

/// Hull of every contributing block's value envelope (conservative mean,
/// variance). `None` when no block holds a value — or some envelope is
/// corrupt.
fn value_hull(
    a: AttrId,
    blocks: &[BlockSynopsis],
    covered: &[usize],
    partial: &[(usize, u64, u64)],
) -> Option<Interval> {
    let mut hull: Option<Interval> = None;
    for i in covered.iter().copied().chain(partial.iter().map(|p| p.0)) {
        let col = &blocks[i].cols[a];
        if col.count == 0 {
            continue;
        }
        let iv = envelope(col)?;
        hull = Some(hull.map_or(iv, |h| h.hull(&iv)));
    }
    hull
}

/// Min/Max, mirroring `ci::extremum_estimate`: covered blocks contribute
/// achieved extrema (certain on both sides); partial blocks contribute
/// their envelope's outer endpoint always and the opposite endpoint only
/// when the block certainly contributes a selected non-NULL value.
fn extremum_estimate(
    a: AttrId,
    blocks: &[BlockSynopsis],
    covered: &[usize],
    partial: &[(usize, u64, u64)],
    est: ValueEstimator,
    assume_non_null: bool,
    is_min: bool,
) -> Option<AggregateEstimate> {
    let mut outer: Option<f64> = None;
    let mut certain: Option<f64> = None;
    let mut estv: Option<f64> = None;
    let fold = |acc: &mut Option<f64>, v: f64| {
        *acc = Some(match *acc {
            Some(cur) => {
                if is_min {
                    cur.min(v)
                } else {
                    cur.max(v)
                }
            }
            None => v,
        });
    };
    for &i in covered {
        let col = &blocks[i].cols[a];
        if col.count == 0 {
            continue;
        }
        let iv = envelope(col)?;
        // All of a covered block's rows are selected, so its extremum is
        // achieved by some selected row.
        let v = if is_min { iv.lo() } else { iv.hi() };
        fold(&mut outer, v);
        fold(&mut certain, v);
        fold(&mut estv, v);
    }
    for &(i, c_lo, _) in partial {
        let col = &blocks[i].cols[a];
        if col.count == 0 {
            continue;
        }
        let iv = envelope(col)?;
        fold(&mut outer, if is_min { iv.lo() } else { iv.hi() });
        // At least one selected row with a real value: certain worst case
        // is the envelope's opposite endpoint.
        if c_lo >= 1 && (assume_non_null || col.count == blocks[i].rows()) {
            fold(&mut certain, if is_min { iv.hi() } else { iv.lo() });
        }
        fold(&mut estv, est.pick(&iv));
    }
    match (outer, certain) {
        (Some(o), Some(c)) => {
            let ci = Interval::from_unordered(o, c);
            Some(AggregateEstimate {
                value: AggregateValue::Float(ci.clamp(estv.unwrap_or(o))),
                ci: Some(ci),
                unbounded: false,
            })
        }
        // No certain contribution — the extremum cannot be bounded from
        // synopses alone.
        _ => None,
    }
}

/// Variance / stddev: exact population moments when every block is fully
/// covered, else the Popoviciu bound over the value hull (as `ci.rs`).
fn variance_estimate(
    a: AttrId,
    blocks: &[BlockSynopsis],
    covered: &[usize],
    partial: &[(usize, u64, u64)],
    est: ValueEstimator,
    sqrt: bool,
) -> Option<AggregateEstimate> {
    if partial.is_empty() {
        let (mut cnt, mut sum, mut sum_sq) = (0u64, 0.0f64, 0.0f64);
        for &i in covered {
            let col = &blocks[i].cols[a];
            cnt += col.count;
            sum += col.sum;
            sum_sq += col.sum_sq;
        }
        if cnt == 0 {
            return Some(AggregateEstimate {
                value: AggregateValue::Empty,
                ci: None,
                unbounded: false,
            });
        }
        let m = sum / cnt as f64;
        let mut v = (sum_sq / cnt as f64 - m * m).max(0.0);
        if sqrt {
            v = v.sqrt();
        }
        return Some(AggregateEstimate {
            value: AggregateValue::Float(v),
            ci: Some(Interval::point(v)),
            unbounded: false,
        });
    }
    let h = value_hull(a, blocks, covered, partial)?;
    let hi_var = (h.width() / 2.0).powi(2);
    let ci = if sqrt {
        Interval::new(0.0, hi_var.sqrt())
    } else {
        Interval::new(0.0, hi_var)
    };
    Some(AggregateEstimate {
        value: AggregateValue::Float(est.pick(&ci)),
        ci: Some(ci),
        unbounded: false,
    })
}

/// Seeds global value envelopes for every queried attribute that has none,
/// hulled from the synopses' per-block column envelopes — the
/// `MetadataPolicy::None` cold-start fix. Existing envelopes are never
/// touched (see [`ValinorIndex::seed_global_bounds`]). Returns how many
/// attributes were seeded.
pub fn seed_missing_global_bounds(
    index: &mut ValinorIndex,
    blocks: &[BlockSynopsis],
    attrs: &[AttrId],
) -> usize {
    let mut seeded = 0;
    for &a in attrs {
        if index.global_bounds(a).is_some() {
            continue;
        }
        if let Some(h) = column_hull(blocks, a) {
            if index.seed_global_bounds(a, h) {
                seeded += 1;
            }
        }
    }
    seeded
}

/// Hull of one column's envelope over every block; `None` when the column
/// is absent, empty everywhere, or any block's envelope is corrupt.
fn column_hull(blocks: &[BlockSynopsis], a: AttrId) -> Option<Interval> {
    let mut hull: Option<Interval> = None;
    for b in blocks {
        let col = b.cols.get(a)?;
        if col.count == 0 {
            continue;
        }
        let iv = envelope(col)?;
        hull = Some(hull.map_or(iv, |h| h.hull(&iv)));
    }
    hull
}

/// Predicted I/O of driving one query **exact** (`φ = 0`) against the
/// current index state, computed before any evaluation from zone maps and
/// classification alone — no file access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IoPrediction {
    /// Objects the exact refinement would read (the engine's per-candidate
    /// cost model: selected counts for window-only partial tiles, whole
    /// tile counts for enrichment or full-tile reads).
    pub objects: u64,
    /// Bytes those reads would move, from the backend's
    /// [`RawFile::value_bytes_hint`] (falling back to mean row size for
    /// row-oriented backends).
    pub bytes: u64,
}

/// Predicts the I/O an exact (`φ = 0`) evaluation of `window`'s aggregates
/// would perform, using only the index's classification (exact selected
/// counts) and the backend's per-value size hint. An accuracy-constrained
/// run (`φ > 0`) stops earlier, so the prediction is an upper bound on any
/// metered run of the same query — and tracks a `φ = 0` run within the
/// per-backend tolerances the cost-estimate gate pins.
pub fn predict_query_io(
    index: &ValinorIndex,
    file: &dyn RawFile,
    window: &Rect,
    aggs: &[AggregateFunction],
    config: &EngineConfig,
) -> Result<IoPrediction> {
    let attrs = query_attrs(index.schema(), aggs)?;
    let classification = index.classify(window);
    let state = crate::state::QueryState::from_classification(index, &classification, &attrs)?;
    if attrs.is_empty() {
        // COUNT-only: answered from indexed axis values, no reads.
        return Ok(IoPrediction {
            objects: 0,
            bytes: 0,
        });
    }
    let mut objects = 0u64;
    for c in &state.candidates {
        objects += match (c.kind, config.adapt.read) {
            (CandidateKind::FullBounded, _) => index.tile(c.tile).object_count(),
            (CandidateKind::Partial, ReadPolicy::WindowOnly) => c.selected,
            (CandidateKind::Partial, ReadPolicy::FullTile) => index.tile(c.tile).object_count(),
        };
    }
    let bytes = match file.value_bytes_hint() {
        Some(per_value) => (objects as f64 * attrs.len() as f64 * per_value).ceil() as u64,
        None => {
            // Row-oriented backend: a positional read re-reads the row.
            let rows = index.total_objects().max(1);
            let row_bytes = file.size_bytes() as f64 / rows as f64;
            (objects as f64 * row_bytes).ceil() as u64
        }
    };
    Ok(IoPrediction { objects, bytes })
}

#[cfg(test)]
mod tests {
    use super::*;
    use pai_storage::raw::build_block_synopses;
    use pai_storage::SynopsisSpec;

    /// Three 4-row blocks: x striped 0..12, y constant 1, value = 10x.
    fn striped_blocks() -> Vec<BlockSynopsis> {
        let n = 12usize;
        let x: Vec<f64> = (0..n).map(|i| i as f64).collect();
        let y = vec![1.0; n];
        let v: Vec<f64> = (0..n).map(|i| i as f64 * 10.0).collect();
        build_block_synopses(&[x, y, v], 4, &SynopsisSpec::default())
    }

    fn cfg() -> EngineConfig {
        EngineConfig::default()
    }

    #[test]
    fn covered_window_composes_exact_moments() {
        let blocks = striped_blocks();
        // Window selecting exactly blocks 0 and 1 (x in [0,8), y anything).
        let w = Rect::new(0.0, 8.0, 0.0, 2.0);
        let ans = try_answer(
            &blocks,
            0,
            1,
            &w,
            8,
            &[
                AggregateFunction::Sum(2),
                AggregateFunction::Mean(2),
                AggregateFunction::Min(2),
                AggregateFunction::Max(2),
                AggregateFunction::Count,
            ],
            &cfg(),
        )
        .expect("fully covered window answers from synopses");
        assert_eq!(ans.blocks, 2);
        assert!(ans.bytes > 0);
        // Sum 0..7 of 10i = 280; exact point CIs throughout.
        assert_eq!(ans.estimates[0].value, AggregateValue::Float(280.0));
        assert_eq!(ans.estimates[0].ci, Some(Interval::point(280.0)));
        assert_eq!(ans.estimates[1].value, AggregateValue::Float(35.0));
        assert_eq!(ans.estimates[2].value, AggregateValue::Float(0.0));
        assert_eq!(ans.estimates[3].value, AggregateValue::Float(70.0));
        assert_eq!(ans.estimates[4].value, AggregateValue::Count(8));
    }

    #[test]
    fn partial_window_bounds_contain_truth() {
        let blocks = striped_blocks();
        // x in [2, 10): selects rows 2..9 (8 rows), cutting blocks 0 and 2.
        let w = Rect::new(2.0, 10.0, 0.0, 2.0);
        let ans = try_answer(
            &blocks,
            0,
            1,
            &w,
            8,
            &[AggregateFunction::Sum(2), AggregateFunction::Mean(2)],
            &cfg(),
        )
        .expect("partial windows still bound");
        // Truth: sum 10*(2+..+9) = 440, mean 55.
        let sum_ci = ans.estimates[0].ci.unwrap();
        assert!(sum_ci.contains(440.0), "sum CI {sum_ci} must contain 440");
        let mean_ci = ans.estimates[1].ci.unwrap();
        assert!(mean_ci.contains(55.0), "mean CI {mean_ci} must contain 55");
    }

    #[test]
    fn exact_count_tightens_partial_intervals() {
        let blocks = striped_blocks();
        let w = Rect::new(2.0, 10.0, 0.0, 2.0);
        // The middle block (rows 4..8) is fully covered (4 rows); the two
        // cut blocks each hold 2 selected rows. With the exact total (8) the
        // count intervals must tighten to sum to 4 across the cut blocks.
        let (covered, partial) = classify_blocks(&blocks, 0, 1, &w, 8).unwrap();
        assert_eq!(covered, vec![1]);
        let total_lo: u64 = partial.iter().map(|p| p.1).sum();
        let total_hi: u64 = partial.iter().map(|p| p.2).sum();
        assert!(total_lo <= 4 && 4 <= total_hi);
        for &(_, lo, hi) in &partial {
            assert!(lo <= 2 && 2 <= hi, "true per-block count is 2");
        }
    }

    #[test]
    fn inconsistent_counts_refuse_to_answer() {
        let blocks = striped_blocks();
        let w = Rect::new(0.0, 8.0, 0.0, 2.0);
        // Claimed selected_total (99) exceeds what the synopses allow.
        assert!(try_answer(&blocks, 0, 1, &w, 99, &[AggregateFunction::Count], &cfg()).is_none());
    }

    #[test]
    fn empty_selection_mirrors_ci_conventions() {
        let blocks = striped_blocks();
        let w = Rect::new(100.0, 200.0, 100.0, 200.0);
        let ans = try_answer(
            &blocks,
            0,
            1,
            &w,
            0,
            &[AggregateFunction::Sum(2), AggregateFunction::Mean(2)],
            &cfg(),
        )
        .unwrap();
        assert_eq!(ans.estimates[0].value, AggregateValue::Float(0.0));
        assert_eq!(ans.estimates[1].value, AggregateValue::Empty);
    }

    #[test]
    fn negative_envelopes_multiply_sign_aware() {
        // One block, values in [-10, -2], 2..=4 of 4 rows selected.
        let x: Vec<f64> = (0..4).map(|i| i as f64).collect();
        let y = vec![0.5; 4];
        let v = vec![-2.0, -10.0, -4.0, -6.0];
        let blocks = build_block_synopses(&[x, y, v], 4, &SynopsisSpec::default());
        let b = &blocks[0];
        let iv = partial_sum_bounds(b, 2, 2, 4).unwrap();
        // lo = 4 * (-10) = -40, hi = 2 * (-2) = -4.
        assert_eq!(iv, Interval::new(-40.0, -4.0));
    }

    #[test]
    fn seeding_installs_hulls_only_where_missing() {
        let blocks = striped_blocks();
        let schema = pai_storage::Schema::synthetic(3);
        let mut idx = ValinorIndex::new(schema, Rect::new(0.0, 12.0, 0.0, 2.0), 2, 1).unwrap();
        assert_eq!(idx.global_bounds(2), None);
        let seeded = seed_missing_global_bounds(&mut idx, &blocks, &[2]);
        assert_eq!(seeded, 1);
        assert_eq!(idx.global_bounds(2), Some(Interval::new(0.0, 110.0)));
        // Second call is a no-op: the envelope exists now.
        assert_eq!(seed_missing_global_bounds(&mut idx, &blocks, &[2]), 0);
        assert_eq!(idx.global_bounds(2), Some(Interval::new(0.0, 110.0)));
    }
}
