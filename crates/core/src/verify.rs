//! Ground-truth verification helpers.
//!
//! Tests and the experiment harness use these to check the two guarantees
//! the paper's method makes:
//!
//! 1. the exact answer lies inside every reported confidence interval;
//! 2. the realized (normalized) error never exceeds the reported upper
//!    error bound.

use pai_common::geometry::Rect;
use pai_common::{AggregateFunction, AggregateValue, PaiError, Result};
use pai_storage::ground_truth::window_truth;
use pai_storage::raw::RawFile;

use crate::bound::{relative_error, NormalizationMode};
use crate::engine::ApproxResult;

/// Verification outcome for one aggregate.
#[derive(Debug, Clone)]
pub struct AggregateCheck {
    pub agg: AggregateFunction,
    pub truth: Option<f64>,
    pub estimate: Option<f64>,
    /// Realized error, normalized like the engine's bound.
    pub realized_error: f64,
    pub truth_in_ci: bool,
    pub error_within_bound: bool,
}

/// Full verification report for one query result.
#[derive(Debug, Clone)]
pub struct VerifyReport {
    pub checks: Vec<AggregateCheck>,
}

impl VerifyReport {
    /// True when every aggregate passed both guarantees.
    pub fn all_ok(&self) -> bool {
        self.checks
            .iter()
            .all(|c| c.truth_in_ci && c.error_within_bound)
    }

    /// Largest realized error across aggregates.
    pub fn max_realized_error(&self) -> f64 {
        self.checks
            .iter()
            .map(|c| c.realized_error)
            .fold(0.0, f64::max)
    }
}

/// Computes the exact answer by scanning the file and checks `result`'s
/// guarantees against it.
pub fn verify_against_truth(
    file: &dyn RawFile,
    window: &Rect,
    aggs: &[AggregateFunction],
    result: &ApproxResult,
    normalization: NormalizationMode,
) -> Result<VerifyReport> {
    if aggs.len() != result.values.len() {
        return Err(PaiError::internal(
            "aggregate list does not match result arity",
        ));
    }
    // Gather the distinct attrs and their truths once.
    let mut attrs = Vec::new();
    for agg in aggs {
        if let Some(a) = agg.attribute() {
            if !attrs.contains(&a) {
                attrs.push(a);
            }
        }
    }
    let truths = window_truth(file, window, &attrs)?;
    let truth_of = |agg: &AggregateFunction| -> Option<f64> {
        match *agg {
            AggregateFunction::Count => {
                // Any attr entry carries the selected count; when the query
                // has no attr at all, fall back to a count scan.
                Some(match truths.first() {
                    Some(t) => t.selected as f64,
                    None => 0.0, // resolved below
                })
            }
            _ => {
                let a = agg.attribute().expect("non-count aggs have attrs");
                let i = attrs.iter().position(|&x| x == a).expect("collected");
                let s = &truths[i].stats;
                match *agg {
                    AggregateFunction::Sum(_) => Some(s.sum()),
                    AggregateFunction::Mean(_) => s.mean(),
                    AggregateFunction::Min(_) => s.min(),
                    AggregateFunction::Max(_) => s.max(),
                    AggregateFunction::Variance(_) => s.variance(),
                    AggregateFunction::StdDev(_) => s.std_dev(),
                    AggregateFunction::Count => unreachable!(),
                }
            }
        }
    };
    // Count-only queries need one counting scan.
    let count_fallback = if attrs.is_empty() {
        Some(pai_storage::ground_truth::window_count(file, window)? as f64)
    } else {
        None
    };

    let mut checks = Vec::with_capacity(aggs.len());
    for ((agg, value), ci) in aggs.iter().zip(&result.values).zip(&result.cis) {
        let truth = match agg {
            AggregateFunction::Count => count_fallback.or_else(|| truth_of(agg)),
            _ => truth_of(agg),
        };
        let estimate = value.as_f64();
        let (truth_in_ci, realized_error) = match (truth, estimate, ci) {
            (Some(t), Some(v), Some(iv)) => (
                // Tolerate float round-off at the very edges.
                iv.contains(t)
                    || (t - iv.lo()).abs() <= 1e-9 * (1.0 + t.abs())
                    || (t - iv.hi()).abs() <= 1e-9 * (1.0 + t.abs()),
                relative_error(v, t, iv.lo(), iv.hi(), normalization),
            ),
            (None, None, _) => (true, 0.0), // both empty: consistent
            // Truth exists but result says empty (or vice versa): fail.
            _ => (false, f64::INFINITY),
        };
        checks.push(AggregateCheck {
            agg: *agg,
            truth,
            estimate,
            realized_error,
            truth_in_ci,
            error_within_bound: realized_error <= result.error_bound + 1e-9,
        });
    }
    Ok(VerifyReport { checks })
}

/// Convenience used by benches: panic with a readable message when a result
/// violates its guarantees.
pub fn assert_verified(
    file: &dyn RawFile,
    window: &Rect,
    aggs: &[AggregateFunction],
    result: &ApproxResult,
    normalization: NormalizationMode,
) {
    let report =
        verify_against_truth(file, window, aggs, result, normalization).expect("verification ran");
    for c in &report.checks {
        assert!(
            c.truth_in_ci,
            "{}: truth {:?} escaped CI (estimate {:?})",
            c.agg, c.truth, c.estimate
        );
        assert!(
            c.error_within_bound,
            "{}: realized error {} exceeds bound {}",
            c.agg, c.realized_error, result.error_bound
        );
    }
}

/// Sanity helper for result arity (used by the query runner).
pub fn check_arity(aggs: &[AggregateFunction], result: &ApproxResult) -> Result<()> {
    if aggs.len() != result.values.len() || aggs.len() != result.cis.len() {
        return Err(PaiError::internal(format!(
            "result arity mismatch: {} aggs, {} values, {} cis",
            aggs.len(),
            result.values.len(),
            result.cis.len()
        )));
    }
    for (agg, v) in aggs.iter().zip(&result.values) {
        if matches!(agg, AggregateFunction::Count) && !matches!(v, AggregateValue::Count(_)) {
            return Err(PaiError::internal(
                "count aggregate produced non-count value",
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use crate::engine::ApproximateEngine;
    use pai_index::init::{build, GridSpec, InitConfig};
    use pai_index::MetadataPolicy;
    use pai_storage::{CsvFormat, DatasetSpec};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn fuzz_guarantees_over_random_queries_and_phis() {
        let spec = DatasetSpec {
            rows: 2500,
            columns: 4,
            seed: 3,
            ..Default::default()
        };
        let file = spec.build_mem(CsvFormat::default()).unwrap();
        let init = InitConfig {
            grid: GridSpec::Fixed { nx: 5, ny: 5 },
            domain: Some(spec.domain),
            metadata: MetadataPolicy::AllNumeric,
        };
        let (idx, _) = build(&file, &init).unwrap();
        let mut eng = ApproximateEngine::new(idx, &file, EngineConfig::paper_evaluation()).unwrap();
        let aggs = [
            AggregateFunction::Count,
            AggregateFunction::Sum(2),
            AggregateFunction::Mean(2),
            AggregateFunction::Min(3),
            AggregateFunction::Max(3),
        ];
        let mut rng = StdRng::seed_from_u64(1234);
        for i in 0..25 {
            let x0 = rng.gen_range(0.0..800.0);
            let y0 = rng.gen_range(0.0..800.0);
            let w = rng.gen_range(20.0..500.0);
            let h = rng.gen_range(20.0..500.0);
            let window = Rect::new(x0, (x0 + w).min(1000.0), y0, (y0 + h).min(1000.0));
            let phi = [0.0, 0.01, 0.05, 0.2][i % 4];
            let res = eng.evaluate(&window, &aggs, phi).unwrap();
            check_arity(&aggs, &res).unwrap();
            assert_verified(&file, &window, &aggs, &res, NormalizationMode::Estimate);
        }
        eng.index().validate_invariants().unwrap();
    }

    #[test]
    fn report_shape() {
        let spec = DatasetSpec {
            rows: 300,
            columns: 3,
            seed: 4,
            ..Default::default()
        };
        let file = spec.build_mem(CsvFormat::default()).unwrap();
        let init = InitConfig {
            grid: GridSpec::Fixed { nx: 3, ny: 3 },
            domain: Some(spec.domain),
            metadata: MetadataPolicy::AllNumeric,
        };
        let (idx, _) = build(&file, &init).unwrap();
        let mut eng = ApproximateEngine::new(idx, &file, EngineConfig::paper_evaluation()).unwrap();
        let window = Rect::new(100.0, 800.0, 100.0, 800.0);
        let aggs = [AggregateFunction::Sum(2)];
        let res = eng.evaluate(&window, &aggs, 0.05).unwrap();
        let report =
            verify_against_truth(&file, &window, &aggs, &res, NormalizationMode::Estimate).unwrap();
        assert!(report.all_ok());
        assert_eq!(report.checks.len(), 1);
        assert!(report.max_realized_error() <= res.error_bound + 1e-9);
    }

    #[test]
    fn empty_window_verifies() {
        let spec = DatasetSpec {
            rows: 100,
            columns: 3,
            seed: 6,
            ..Default::default()
        };
        let file = spec.build_mem(CsvFormat::default()).unwrap();
        let init = InitConfig {
            grid: GridSpec::Fixed { nx: 2, ny: 2 },
            domain: Some(spec.domain),
            metadata: MetadataPolicy::AllNumeric,
        };
        let (idx, _) = build(&file, &init).unwrap();
        let mut eng = ApproximateEngine::new(idx, &file, EngineConfig::paper_evaluation()).unwrap();
        let window = Rect::new(-50.0, -10.0, -50.0, -10.0);
        let aggs = [AggregateFunction::Count, AggregateFunction::Mean(2)];
        let res = eng.evaluate(&window, &aggs, 0.01).unwrap();
        let report =
            verify_against_truth(&file, &window, &aggs, &res, NormalizationMode::Estimate).unwrap();
        assert!(report.all_ok(), "{report:?}");
    }
}
