//! The partial-adaptation engine (§3's method, end to end).
//!
//! Per query: classify tiles, assemble confidence intervals from metadata,
//! and — while the upper error bound exceeds the user's constraint `φ` —
//! process the highest-priority candidate tile and fold its now-exact
//! contribution back in. Every processed tile permanently refines the index
//! (split + metadata), so later queries in the same area start tighter:
//! adaptation is *partial* per query but cumulative across the session.
//!
//! Three evaluation modes share the same loop:
//! * [`ApproximateEngine::evaluate`] — accuracy-constrained (the paper);
//! * [`ApproximateEngine::evaluate_with_io_budget`] — the dual problem:
//!   spend at most a given number of object reads and report the best
//!   achievable bound (interactivity-first, as the paper's introduction
//!   motivates);
//! * [`estimate_readonly`] — metadata only, zero I/O, no adaptation (used
//!   by concurrent readers and overview visualizations).

use std::time::Instant;

use pai_common::geometry::Rect;
use pai_common::{
    AggregateFunction, AggregateValue, AttrId, Interval, PaiError, Result, RowLocator,
};
use pai_index::eval::{query_attrs, QueryStats};
use pai_index::{
    apply_enrich, apply_plan, fetch_window, plan_enrich, plan_tile, EnrichPlan, ReadPolicy, TileId,
    TilePlan, ValinorIndex,
};
use pai_storage::batch::read_row_groups;
use pai_storage::raw::{BlockSynopsis, RawFile};

use crate::bound::upper_error_bound;
use crate::ci::{estimate_aggregate, AggregateEstimate};
use crate::config::{validate_phi, EagerRefinement, EngineConfig};
use crate::policy::CandidateView;
use crate::state::{Candidate, CandidateKind, QueryState};

/// One step of a progressive evaluation trace: the state of the answer
/// after `tiles_processed` tiles — what a progressive-visualization client
/// (see the survey line of related work in the paper) would render.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressStep {
    /// Tiles processed so far for this query (0 = metadata-only answer).
    pub tiles_processed: usize,
    /// Upper error bound at this point.
    pub error_bound: f64,
    /// Estimate of the first aggregate at this point (`None` when empty).
    pub estimate: Option<f64>,
    /// Cumulative objects read from the file for this query.
    pub objects_read: u64,
    /// Cumulative bytes read from the file for this query — the metric that
    /// separates storage backends (a binary columnar read fetches a few
    /// values where CSV re-reads a whole text record).
    pub bytes_read: u64,
    /// Cumulative `read_rows` calls issued for this query — the metric the
    /// batched adaptation pipeline improves (many tiles per call).
    pub read_calls: u64,
    /// Cumulative storage blocks materialized for this query — the
    /// block-structured backends' unit of I/O (0 on CSV).
    pub blocks_read: u64,
    /// Cumulative blocks a zone-map pushdown proved irrelevant and never
    /// touched — the metric the `PaiZone` backend improves.
    pub blocks_skipped: u64,
    /// Cumulative ranged HTTP requests issued for this query (0 on local
    /// backends) — the metric request coalescing improves.
    pub http_requests: u64,
    /// Cumulative wire bytes those requests moved, both directions.
    pub http_bytes: u64,
    /// Cumulative remote requests retried after transient faults.
    pub retries: u64,
    /// Peak concurrently in-flight fetch requests observed so far (1 on a
    /// sequential remote fetch path, 0 on local backends).
    pub fetch_inflight_peak: u64,
    /// In-request fetch time over wall fetch time so far: > 1 when the
    /// overlapped pipeline hid request latency behind other requests, ~1
    /// sequentially, 0 when nothing was fetched remotely.
    pub overlap_ratio: f64,
    /// Cumulative adaptive part-sizer parameter changes.
    pub parts_resized: u64,
    /// Cumulative spans served from the block cache (0 uncached) — the
    /// metric the tiered cache improves on re-exploration.
    pub cache_hits: u64,
    /// Cumulative spans the cache handed to the transport.
    pub cache_misses: u64,
    /// Cumulative cache entries evicted under budget pressure.
    pub cache_evictions: u64,
    /// Cumulative bytes written to the cache's disk-spill tier.
    pub cache_spill_bytes: u64,
    /// Bytes resident in the cache's memory tier at this point (a gauge).
    pub cache_mem_bytes: u64,
    /// Approximate median per-request fetch latency (µs) over the
    /// query so far, from the log2-bucketed fetch histogram (0 when no
    /// remote fetch has run).
    pub fetch_p50_us: u64,
    /// Approximate 99th-percentile per-request fetch latency (µs) over
    /// the query so far (0 when no remote fetch has run).
    pub fetch_p99_us: u64,
    /// Queries answered purely from block synopses so far (0 or 1 within
    /// one query's trace; cumulative in session meters).
    pub synopsis_hits: u64,
    /// Block synopses consulted by synopsis-path answers.
    pub synopsis_blocks: u64,
    /// Approximate in-memory bytes of those synopses — the metadata
    /// footprint that substituted for data I/O.
    pub synopsis_bytes: u64,
}

/// An all-zero step, the base for struct-update construction of steps that
/// only carry a few live fields (the metadata-only step 0, synopsis hits).
const ZERO_STEP: ProgressStep = ProgressStep {
    tiles_processed: 0,
    error_bound: 0.0,
    estimate: None,
    objects_read: 0,
    bytes_read: 0,
    read_calls: 0,
    blocks_read: 0,
    blocks_skipped: 0,
    http_requests: 0,
    http_bytes: 0,
    retries: 0,
    fetch_inflight_peak: 0,
    overlap_ratio: 0.0,
    parts_resized: 0,
    cache_hits: 0,
    cache_misses: 0,
    cache_evictions: 0,
    cache_spill_bytes: 0,
    cache_mem_bytes: 0,
    fetch_p50_us: 0,
    fetch_p99_us: 0,
    synopsis_hits: 0,
    synopsis_blocks: 0,
    synopsis_bytes: 0,
};

/// Result of one approximate evaluation.
#[derive(Debug, Clone)]
pub struct ApproxResult {
    /// Approximate value per requested aggregate.
    pub values: Vec<AggregateValue>,
    /// Confidence interval per aggregate (`None` for empty selections).
    /// The exact answer is guaranteed to lie inside.
    pub cis: Vec<Option<Interval>>,
    /// Achieved upper error bound (max over aggregates).
    pub error_bound: f64,
    /// The constraint the query ran under (`f64::INFINITY` for budgeted or
    /// read-only evaluations, which impose no accuracy constraint).
    pub phi: f64,
    /// Whether `error_bound <= phi` was reached. Budgeted/read-only
    /// evaluations report `true` vacuously.
    pub met_constraint: bool,
    /// Execution metrics (I/O deltas, tiles processed/split/enriched, time).
    pub stats: QueryStats,
}

/// How long the adaptation loop may keep processing tiles.
enum StopRule {
    /// Until the bound drops to `phi` (the paper's constraint).
    Accuracy { phi: f64 },
    /// Until the next candidate would exceed the remaining object budget.
    IoBudget { remaining: u64 },
}

/// The shared per-query evaluation context: everything the loop needs,
/// borrowed from whichever owner (engine or shared index) drives it.
struct EvalCtx<'a> {
    index: &'a mut ValinorIndex,
    file: &'a dyn RawFile,
    config: &'a EngineConfig,
}

impl EvalCtx<'_> {
    fn run(
        &mut self,
        window: &Rect,
        aggs: &[AggregateFunction],
        mut stop: StopRule,
        mut trace: Option<&mut Vec<ProgressStep>>,
    ) -> Result<ApproxResult> {
        let t0 = Instant::now();
        let io0 = self.file.counters().snapshot();
        let attrs = query_attrs(self.index.schema(), aggs)?;

        let classification = self.index.classify(window);

        // Synopsis-first: before any fetch is planned, try to answer the
        // query from the backend's per-block synopses. Even on a miss the
        // pass seeds global attribute bounds for metadata-free cold starts,
        // which must happen before candidates capture their metadata view.
        if self.config.synopsis {
            if let Some(blocks) = self.file.block_synopses() {
                crate::synopsis::seed_missing_global_bounds(self.index, blocks, &attrs);
                if let StopRule::Accuracy { phi } = stop {
                    if let Some(hit) = synopsis_hit(
                        self.index,
                        self.file,
                        self.config,
                        blocks,
                        window,
                        aggs,
                        classification.selected_total,
                        phi,
                    ) {
                        let mut stats = QueryStats {
                            selected: classification.selected_total,
                            tiles_full: classification.full.len(),
                            tiles_partial: classification.partial.len(),
                            ..Default::default()
                        };
                        stats.io = self.file.counters().snapshot().since(&io0);
                        stats.elapsed = t0.elapsed();
                        if let Some(t) = trace.as_deref_mut() {
                            t.push(ProgressStep {
                                tiles_processed: 0,
                                error_bound: hit.error_bound,
                                estimate: hit.values.first().and_then(|v| v.as_f64()),
                                synopsis_hits: stats.io.synopsis_hits,
                                synopsis_blocks: stats.io.synopsis_blocks,
                                synopsis_bytes: stats.io.synopsis_bytes,
                                ..ZERO_STEP
                            });
                        }
                        return Ok(ApproxResult { stats, ..hit });
                    }
                }
            }
        }

        let mut state = QueryState::from_classification(self.index, &classification, &attrs)?;
        let mut stats = QueryStats {
            selected: classification.selected_total,
            tiles_full: classification.full.len(),
            tiles_partial: classification.partial.len(),
            ..Default::default()
        };

        // The partial-adaptation loop, pipelined per iteration as
        // plan (pure) → coalesced fetch → apply + re-check.
        let mut step = 0usize;
        let (mut estimates, mut bound) = assess(self.config, aggs, &state);
        if let Some(t) = trace.as_deref_mut() {
            t.push(ProgressStep {
                tiles_processed: 0,
                error_bound: bound,
                estimate: estimates.first().and_then(|e| e.value.as_f64()),
                ..ZERO_STEP
            });
        }
        'outer: loop {
            if state.candidates.is_empty() {
                break;
            }
            // Stage 1 — plan: select the batch the sequential loop would
            // process next and compute each tile's pure refinement plan.
            let picks = match stop {
                StopRule::Accuracy { phi } => {
                    if bound <= phi {
                        break;
                    }
                    let (index, config) = (&*self.index, self.config);
                    config.policy.pick_batch(
                        state.candidates.len(),
                        step,
                        config.adapt_batch,
                        |alive| candidate_views(index, config, aggs, &state, alive),
                    )
                }
                StopRule::IoBudget { ref mut remaining } => {
                    if bound <= 0.0 {
                        break;
                    }
                    // Costs must be re-checked against the shrinking budget
                    // per tile, so budgeted evaluation stays tile-at-a-time.
                    // Among candidates that fit the budget, let the policy
                    // choose; stop when nothing fits.
                    let all: Vec<usize> = (0..state.candidates.len()).collect();
                    let views = candidate_views(self.index, self.config, aggs, &state, &all);
                    let affordable: Vec<usize> = (0..views.len())
                        .filter(|&i| views[i].cost <= *remaining)
                        .collect();
                    if affordable.is_empty() {
                        break;
                    }
                    let sub: Vec<CandidateView> = affordable.iter().map(|&i| views[i]).collect();
                    let chosen = affordable[self.config.policy.pick(&sub, step)];
                    *remaining = remaining.saturating_sub(views[chosen].cost);
                    vec![chosen]
                }
            };
            let plans: Vec<BatchPlan> = picks
                .iter()
                .map(|&p| {
                    plan_candidate(
                        self.index,
                        &state.candidates[p],
                        window,
                        &attrs,
                        self.config,
                    )
                })
                .collect::<Result<_>>()?;

            // Stage 2 + 3 — fetch and apply, overlapped when configured:
            // the batch's fetch units (one coalesced read per distinct
            // attribute set) stream into the apply stage as they complete,
            // and each plan is installed in sequential pick order with the
            // stop rule re-evaluated after every tile. Plans fetched past
            // the stop point are discarded unapplied — and their fetches
            // still run to completion — so the processed-tile trajectory,
            // every answer and CI, and every logical meter are identical to
            // the tile-at-a-time loop at any `fetch_workers` count.
            let file = self.file;
            let mut stopped = false;
            fetch_plans_each(file, &plans, window, self.config, |i, values| {
                if stopped {
                    return Ok(());
                }
                self.apply_one(&mut state, &plans[i], values, window, &mut stats)?;
                step += 1;
                (estimates, bound) = assess(self.config, aggs, &state);
                if let Some(t) = trace.as_deref_mut() {
                    let io = file.counters().snapshot().since(&io0);
                    t.push(ProgressStep {
                        tiles_processed: step,
                        error_bound: bound,
                        estimate: estimates.first().and_then(|e| e.value.as_f64()),
                        objects_read: io.objects_read,
                        bytes_read: io.bytes_read,
                        read_calls: io.read_calls,
                        blocks_read: io.blocks_read,
                        blocks_skipped: io.blocks_skipped,
                        http_requests: io.http_requests,
                        http_bytes: io.http_bytes,
                        retries: io.retries,
                        fetch_inflight_peak: io.fetch_inflight_peak,
                        overlap_ratio: io.overlap_ratio(),
                        parts_resized: io.parts_resized,
                        cache_hits: io.cache_hits,
                        cache_misses: io.cache_misses,
                        cache_evictions: io.cache_evictions,
                        cache_spill_bytes: io.cache_spill_bytes,
                        cache_mem_bytes: io.cache_mem_bytes,
                        fetch_p50_us: io.fetch_hist.p50_us(),
                        fetch_p99_us: io.fetch_hist.p99_us(),
                        synopsis_hits: io.synopsis_hits,
                        synopsis_blocks: io.synopsis_blocks,
                        synopsis_bytes: io.synopsis_bytes,
                    });
                }
                match stop {
                    StopRule::Accuracy { phi } => {
                        if bound <= phi {
                            stopped = true;
                        }
                    }
                    StopRule::IoBudget { .. } => {
                        if bound <= 0.0 {
                            stopped = true;
                        }
                    }
                }
                Ok(())
            })?;
            if stopped {
                break 'outer;
            }
        }
        let (phi, met_constraint) = match stop {
            StopRule::Accuracy { phi } => (phi, bound <= phi),
            StopRule::IoBudget { .. } => (f64::INFINITY, true),
        };

        // Future-work knob: keep adapting after the constraint is met.
        if let (EagerRefinement::ExtraTiles(extra), true) = (self.config.eager, met_constraint) {
            let mut done = 0;
            while done < extra && !state.candidates.is_empty() {
                let all: Vec<usize> = (0..state.candidates.len()).collect();
                let views = candidate_views(self.index, self.config, aggs, &state, &all);
                let pick = self.config.policy.pick(&views, step);
                self.process_candidate(&mut state, pick, window, &attrs, &mut stats)?;
                step += 1;
                done += 1;
            }
            if done > 0 {
                (estimates, bound) = assess(self.config, aggs, &state);
            }
        }

        stats.io = self.file.counters().snapshot().since(&io0);
        stats.elapsed = t0.elapsed();
        let (values, cis) = estimates.into_iter().map(|e| (e.value, e.ci)).unzip();
        Ok(ApproxResult {
            values,
            cis,
            error_bound: bound,
            phi,
            met_constraint,
            stats,
        })
    }

    /// Processes candidate `pick` as a one-tile batch: partial tiles go
    /// through the paper's `process(t)` (plan + read + split + reorganize +
    /// metadata); full-but-bounded tiles get an enrichment read. Either way
    /// the candidate's contribution becomes exact. Used by the sequential
    /// paths (eager refinement) that pick one tile at a time.
    fn process_candidate(
        &mut self,
        state: &mut QueryState,
        pick: usize,
        window: &Rect,
        attrs: &[usize],
        stats: &mut QueryStats,
    ) -> Result<()> {
        let plan = plan_candidate(
            self.index,
            &state.candidates[pick],
            window,
            attrs,
            self.config,
        )?;
        let fetched = fetch_plans(self.file, std::slice::from_ref(&plan), window, self.config)?;
        self.apply_one(state, &plan, &fetched[0], window, stats)
    }

    /// Applies one fetched plan, folding the now-exact contribution into
    /// the query state.
    fn apply_one(
        &mut self,
        state: &mut QueryState,
        plan: &BatchPlan,
        values: &[Vec<f64>],
        window: &Rect,
        stats: &mut QueryStats,
    ) -> Result<()> {
        let pick = state
            .candidates
            .iter()
            .position(|c| c.tile == plan.tile())
            .ok_or_else(|| PaiError::internal("batch plan names an already-resolved candidate"))?;
        match plan {
            BatchPlan::Partial(p) => {
                let out = apply_plan(self.index, p, window, &self.config.adapt, values)?;
                stats.tiles_processed += 1;
                stats.tiles_split += usize::from(out.did_split);
                state.resolve(pick, &out.in_window);
            }
            BatchPlan::Enrich(p) => {
                apply_enrich(self.index, p, values)?;
                stats.tiles_processed += 1;
                stats.tiles_enriched += 1;
                let exact = p.resolved_stats(values)?;
                state.resolve(pick, &exact);
            }
        }
        Ok(())
    }
}

/// One candidate's refinement plan: either the full `process(t)` of a
/// partially-contained tile or the enrichment read of a fully-contained
/// tile with missing metadata. Both variants are pure plans computed
/// against an immutable index view; `pai-core::concurrent` fetches them
/// without holding any lock.
pub(crate) enum BatchPlan {
    Partial(TilePlan),
    Enrich(EnrichPlan),
}

impl BatchPlan {
    pub(crate) fn tile(&self) -> TileId {
        match self {
            BatchPlan::Partial(p) => p.tile,
            BatchPlan::Enrich(p) => p.tile,
        }
    }

    pub(crate) fn planned_version(&self) -> u64 {
        match self {
            BatchPlan::Partial(p) => p.planned_version,
            BatchPlan::Enrich(p) => p.planned_version,
        }
    }

    fn locators(&self) -> &[RowLocator] {
        match self {
            BatchPlan::Partial(p) => &p.locators,
            BatchPlan::Enrich(p) => &p.locators,
        }
    }

    fn read_attrs(&self) -> &[AttrId] {
        match self {
            BatchPlan::Partial(p) => &p.read_attrs,
            BatchPlan::Enrich(p) => &p.read_attrs,
        }
    }
}

/// Plans the processing of one candidate (pure, `&index`).
pub(crate) fn plan_candidate(
    index: &ValinorIndex,
    cand: &Candidate,
    window: &Rect,
    attrs: &[AttrId],
    config: &EngineConfig,
) -> Result<BatchPlan> {
    Ok(match cand.kind {
        CandidateKind::Partial => {
            BatchPlan::Partial(plan_tile(index, cand.tile, window, attrs, &config.adapt)?)
        }
        CandidateKind::FullBounded => BatchPlan::Enrich(plan_enrich(index, cand.tile, attrs)?),
    })
}

/// Stage 2 of the pipeline: fetches every plan's locators with as few
/// `read_rows` calls as possible — one coalesced cross-tile call per
/// distinct attribute set (plans with no attributes to read are answered
/// without touching the file). Returns per-plan value rows, positionally
/// aligned with each plan's locators.
///
/// The query `window` is pushed down to the storage backend when every
/// plan's locator set is provably window-only: enrichment plans always are
/// (their tiles are fully contained in the window), partial-tile plans are
/// under [`ReadPolicy::WindowOnly`] (the default). Under
/// [`ReadPolicy::FullTile`] the hint is withheld — those plans consume
/// out-of-window values for child enrichment, which a zone-map skip would
/// corrupt.
pub(crate) fn fetch_plans(
    file: &dyn RawFile,
    plans: &[BatchPlan],
    window: &Rect,
    config: &EngineConfig,
) -> Result<Vec<Vec<Vec<f64>>>> {
    let pushdown = batch_pushdown(plans, window, config);
    let mut out: Vec<Option<Vec<Vec<f64>>>> = plans.iter().map(|_| None).collect();
    let units = fetch_units(plans, &mut out);
    for (attrs, members) in units {
        let locs: Vec<&[RowLocator]> = members.iter().map(|&i| plans[i].locators()).collect();
        let fetched = read_row_groups(file, &locs, attrs, pushdown, config.fetch_parallelism)?;
        for (i, rows) in members.into_iter().zip(fetched) {
            out[i] = Some(rows);
        }
    }
    Ok(out
        .into_iter()
        .map(|o| o.expect("every plan fetched"))
        .collect())
}

/// The batch's window pushdown hint. The window-only safety rule has one
/// home: `pai_index::fetch_window`. The batch-level extension on top: an
/// all-enrichment batch is safe under any read policy (enrich tiles are
/// fully contained in the window, so every locator is in-window by
/// construction).
fn batch_pushdown<'w>(
    plans: &[BatchPlan],
    window: &'w Rect,
    config: &EngineConfig,
) -> Option<&'w Rect> {
    fetch_window(&config.adapt, window).or_else(|| {
        plans
            .iter()
            .all(|p| matches!(p, BatchPlan::Enrich(_)))
            .then_some(window)
    })
}

/// Groups plan indices by attribute set, preserving first-seen order — one
/// returned unit is one `read_rows` call. COUNT-only style plans (no
/// attributes to read) charge no I/O: their slot in `out` is prefilled with
/// synthesized empty rows and they join no unit.
fn fetch_units<'p>(
    plans: &'p [BatchPlan],
    out: &mut [Option<Vec<Vec<f64>>>],
) -> Vec<(&'p [AttrId], Vec<usize>)> {
    let mut units: Vec<(&[AttrId], Vec<usize>)> = Vec::new();
    for (i, plan) in plans.iter().enumerate() {
        if plan.read_attrs().is_empty() {
            out[i] = Some(vec![Vec::new(); plan.locators().len()]);
            continue;
        }
        match units.iter_mut().find(|(a, _)| *a == plan.read_attrs()) {
            Some((_, members)) => members.push(i),
            None => units.push((plan.read_attrs(), vec![i])),
        }
    }
    units
}

/// Streamed fetch + apply: fetches every plan exactly as [`fetch_plans`]
/// would and invokes `on_plan(i, values)` for each plan **in plan order**,
/// overlapping later fetch units with earlier applies when
/// `config.fetch_workers > 1`.
///
/// Equivalence guarantees, at any worker count:
/// * The same fetch units are issued — grouping, pushdown, and the
///   `read_row_groups` call per unit are byte-identical to the sequential
///   path, and units are *claimed* in the sequential issue order — so every
///   logical meter (and, absent adaptive sizing, every transport meter)
///   lands on the same totals.
/// * `on_plan` runs in strict plan order 0, 1, 2, …, so apply-side state,
///   answers, CIs, and trajectories cannot observe fetch completion order.
/// * Every claimed fetch runs to completion before this returns (the
///   channel is drained even after an error or an `on_plan` early-out by
///   the caller's own flag), so an apply-side stop never truncates the
///   batch's I/O differently than the fetch-then-apply path would.
pub(crate) fn fetch_plans_each(
    file: &dyn RawFile,
    plans: &[BatchPlan],
    window: &Rect,
    config: &EngineConfig,
    mut on_plan: impl FnMut(usize, &[Vec<f64>]) -> Result<()>,
) -> Result<()> {
    let pushdown = batch_pushdown(plans, window, config);
    let mut out: Vec<Option<Vec<Vec<f64>>>> = plans.iter().map(|_| None).collect();
    let units = fetch_units(plans, &mut out);
    let workers = config.fetch_workers.min(units.len());
    if workers <= 1 {
        // Sequential: fetch every unit, then apply in plan order — exactly
        // the fetch-then-apply loop this helper generalizes.
        for (attrs, members) in units {
            let locs: Vec<&[RowLocator]> = members.iter().map(|&i| plans[i].locators()).collect();
            let fetched = read_row_groups(file, &locs, attrs, pushdown, config.fetch_parallelism)?;
            for (i, rows) in members.into_iter().zip(fetched) {
                out[i] = Some(rows);
            }
        }
        for (i, values) in out.iter().enumerate() {
            on_plan(i, values.as_deref().expect("every plan fetched"))?;
        }
        return Ok(());
    }

    // Overlapped: a bounded pool of producer threads claims units in issue
    // order and streams results back; this thread applies plans the moment
    // their unit (and every earlier plan's unit) has landed.
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::mpsc;
    let next = AtomicUsize::new(0);
    let units = &units;
    std::thread::scope(|s| {
        let (tx, rx) = mpsc::channel::<(usize, Result<Vec<Vec<Vec<f64>>>>)>();
        for _ in 0..workers {
            let tx = tx.clone();
            let next = &next;
            s.spawn(move || loop {
                let u = next.fetch_add(1, Ordering::Relaxed);
                if u >= units.len() {
                    break;
                }
                let (attrs, members) = &units[u];
                let locs: Vec<&[RowLocator]> =
                    members.iter().map(|&i| plans[i].locators()).collect();
                let res = read_row_groups(file, &locs, attrs, pushdown, config.fetch_parallelism);
                if tx.send((u, res)).is_err() {
                    break;
                }
            });
        }
        drop(tx);
        let mut first_err: Option<PaiError> = None;
        let mut cursor = 0usize;
        // Exactly one message arrives per unit (the receiver outlives the
        // loop, so no send ever fails on the success path); draining them
        // all keeps in-flight fetches running to completion even after an
        // error, preserving fetch-meter behavior.
        for _ in 0..units.len() {
            let Ok((u, res)) = rx.recv() else { break };
            match res {
                Ok(fetched) => {
                    if first_err.is_none() {
                        for (&i, rows) in units[u].1.iter().zip(fetched) {
                            out[i] = Some(rows);
                        }
                    }
                }
                Err(e) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                }
            }
            while first_err.is_none() && cursor < plans.len() && out[cursor].is_some() {
                if let Err(e) = on_plan(cursor, out[cursor].as_deref().expect("resolved")) {
                    first_err = Some(e);
                    break;
                }
                cursor += 1;
            }
        }
        match first_err {
            Some(e) => Err(e),
            None => Ok(()),
        }
    })
}

/// Attempts to answer the whole query from block synopses. `Some` means
/// the composed estimates' combined bound already meets `phi`: the query
/// is done with zero data I/O, and the synopsis meters have been ticked.
/// The returned result carries default stats — the caller owns the
/// timing/I/O accounting.
#[allow(clippy::too_many_arguments)]
pub(crate) fn synopsis_hit(
    index: &ValinorIndex,
    file: &dyn RawFile,
    config: &EngineConfig,
    blocks: &[BlockSynopsis],
    window: &Rect,
    aggs: &[AggregateFunction],
    selected_total: u64,
    phi: f64,
) -> Option<ApproxResult> {
    let schema = index.schema();
    let ans = crate::synopsis::try_answer(
        blocks,
        schema.x_axis(),
        schema.y_axis(),
        window,
        selected_total,
        aggs,
        config,
    )?;
    let bound = ans
        .estimates
        .iter()
        .map(|e| bound_of(config, e))
        .fold(0.0f64, f64::max);
    if bound > phi {
        return None;
    }
    let counters = file.counters();
    counters.add_synopsis_hits(1);
    counters.add_synopsis_blocks(ans.blocks);
    counters.add_synopsis_bytes(ans.bytes);
    let (values, cis) = ans.estimates.into_iter().map(|e| (e.value, e.ci)).unzip();
    Some(ApproxResult {
        values,
        cis,
        error_bound: bound,
        phi,
        met_constraint: true,
        stats: QueryStats::default(),
    })
}

/// Current estimates and the combined (max-over-aggregates) bound.
pub(crate) fn assess(
    config: &EngineConfig,
    aggs: &[AggregateFunction],
    state: &QueryState,
) -> (Vec<AggregateEstimate>, f64) {
    let estimates: Vec<AggregateEstimate> = aggs
        .iter()
        .map(|agg| estimate_aggregate(agg, state, config.estimator, config.assume_non_null))
        .collect();
    let bound = estimates
        .iter()
        .map(|e| bound_of(config, e))
        .fold(0.0f64, f64::max);
    (estimates, bound)
}

pub(crate) fn bound_of(config: &EngineConfig, e: &AggregateEstimate) -> f64 {
    if e.unbounded {
        return f64::INFINITY;
    }
    match (&e.ci, e.value.as_f64()) {
        (Some(ci), Some(v)) => upper_error_bound(v, ci.lo(), ci.hi(), config.normalization),
        // Empty selection: nothing to be wrong about.
        _ => 0.0,
    }
}

/// Builds the policy's view of a subset of candidates (`subset` holds
/// indices into `state.candidates`): a per-candidate interval width reduced
/// over the query's aggregates (each aggregate's widths normalized across
/// the subset first, so attributes with different scales contribute
/// comparably), plus cost proxies.
///
/// Normalization over the *subset* — not all candidates — is what lets
/// [`crate::SelectionPolicy::pick_batch`] reproduce the sequential pick
/// order exactly: after each simulated removal the remaining candidates are
/// re-normalized just as the one-at-a-time loop would.
pub(crate) fn candidate_views(
    index: &ValinorIndex,
    config: &EngineConfig,
    aggs: &[AggregateFunction],
    state: &QueryState,
    subset: &[usize],
) -> Vec<CandidateView> {
    let mut widths = vec![0.0f64; subset.len()];
    for agg in aggs {
        let per_agg: Vec<f64> = subset
            .iter()
            .map(|&i| contribution_width(config, agg, state, &state.candidates[i]))
            .collect();
        let max = per_agg.iter().copied().fold(0.0f64, f64::max);
        if max == 0.0 {
            continue;
        }
        for (w, &raw) in widths.iter_mut().zip(&per_agg) {
            let norm = if raw.is_infinite() {
                f64::INFINITY
            } else {
                raw / max
            };
            if norm > *w {
                *w = norm;
            }
        }
    }
    subset
        .iter()
        .zip(widths)
        .map(|(&i, width)| {
            let c = &state.candidates[i];
            CandidateView {
                width,
                selected: c.selected,
                cost: match (c.kind, config.adapt.read) {
                    (CandidateKind::FullBounded, _) => index.tile(c.tile).object_count(),
                    (CandidateKind::Partial, ReadPolicy::WindowOnly) => c.selected,
                    (CandidateKind::Partial, ReadPolicy::FullTile) => {
                        index.tile(c.tile).object_count()
                    }
                },
            }
        })
        .collect()
}

/// Width of one candidate's contribution interval for one aggregate — the
/// `w(t)` of the selection score.
fn contribution_width(
    config: &EngineConfig,
    agg: &AggregateFunction,
    state: &QueryState,
    c: &crate::state::Candidate,
) -> f64 {
    let assume = config.assume_non_null;
    match *agg {
        AggregateFunction::Count => 0.0,
        AggregateFunction::Sum(a) | AggregateFunction::Mean(a) => c
            .sum_bounds(state.attr_pos(a), assume)
            .map_or(f64::INFINITY, |iv| iv.width()),
        AggregateFunction::Min(a)
        | AggregateFunction::Max(a)
        | AggregateFunction::Variance(a)
        | AggregateFunction::StdDev(a) => c
            .value_bounds(state.attr_pos(a))
            .map_or(f64::INFINITY, |iv| iv.width()),
    }
}

/// Metadata-only evaluation: assembles estimates and intervals from the
/// index *as it currently is* — no file access, no adaptation, `&index`
/// only. This is what concurrent readers and overview UIs use.
pub fn estimate_readonly(
    index: &ValinorIndex,
    config: &EngineConfig,
    window: &Rect,
    aggs: &[AggregateFunction],
) -> Result<ApproxResult> {
    let t0 = Instant::now();
    let attrs = query_attrs(index.schema(), aggs)?;
    let classification = index.classify(window);
    let state = QueryState::from_classification(index, &classification, &attrs)?;
    let (estimates, bound) = assess(config, aggs, &state);
    let (values, cis) = estimates.into_iter().map(|e| (e.value, e.ci)).unzip();
    Ok(ApproxResult {
        values,
        cis,
        error_bound: bound,
        phi: f64::INFINITY,
        met_constraint: true,
        stats: QueryStats {
            selected: classification.selected_total,
            tiles_full: classification.full.len(),
            tiles_partial: classification.partial.len(),
            elapsed: t0.elapsed(),
            ..Default::default()
        },
    })
}

/// The approximate query-answering engine over a [`ValinorIndex`].
pub struct ApproximateEngine<'f> {
    index: ValinorIndex,
    file: &'f dyn RawFile,
    config: EngineConfig,
}

impl<'f> ApproximateEngine<'f> {
    pub fn new(index: ValinorIndex, file: &'f dyn RawFile, config: EngineConfig) -> Result<Self> {
        config.validate()?;
        Ok(ApproximateEngine {
            index,
            file,
            config,
        })
    }

    pub fn index(&self) -> &ValinorIndex {
        &self.index
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Consumes the engine, returning the (partially adapted) index.
    pub fn into_index(self) -> ValinorIndex {
        self.index
    }

    /// Evaluates a window-aggregate query with accuracy constraint `phi`
    /// (relative upper error bound, e.g. `0.05` for the paper's "5 %").
    pub fn evaluate(
        &mut self,
        window: &Rect,
        aggs: &[AggregateFunction],
        phi: f64,
    ) -> Result<ApproxResult> {
        validate_phi(phi)?;
        EvalCtx {
            index: &mut self.index,
            file: self.file,
            config: &self.config,
        }
        .run(window, aggs, StopRule::Accuracy { phi }, None)
    }

    /// Like [`Self::evaluate`], additionally returning the progressive
    /// trace: the (bound, estimate, cumulative I/O) after each processed
    /// tile, starting from the metadata-only answer. A progressive UI can
    /// replay it as successively tighter renderings.
    pub fn evaluate_traced(
        &mut self,
        window: &Rect,
        aggs: &[AggregateFunction],
        phi: f64,
    ) -> Result<(ApproxResult, Vec<ProgressStep>)> {
        validate_phi(phi)?;
        let mut trace = Vec::new();
        let res = EvalCtx {
            index: &mut self.index,
            file: self.file,
            config: &self.config,
        }
        .run(window, aggs, StopRule::Accuracy { phi }, Some(&mut trace))?;
        Ok((res, trace))
    }

    /// Exact evaluation through the same machinery (`φ = 0`); useful as a
    /// cross-check against [`pai_index::ExactEngine`].
    pub fn evaluate_exact(
        &mut self,
        window: &Rect,
        aggs: &[AggregateFunction],
    ) -> Result<ApproxResult> {
        self.evaluate(window, aggs, 0.0)
    }

    /// The dual problem: evaluate under an **I/O budget** instead of an
    /// accuracy constraint. Processes tiles (in policy order) only while the
    /// next tile's read cost fits into `max_objects`, then reports the best
    /// bound achieved. `max_objects = 0` is the pure metadata answer.
    ///
    /// Costs are exact for `ReadPolicy::WindowOnly` partial tiles (selected
    /// counts are known from the index) and for whole-tile reads.
    pub fn evaluate_with_io_budget(
        &mut self,
        window: &Rect,
        aggs: &[AggregateFunction],
        max_objects: u64,
    ) -> Result<ApproxResult> {
        EvalCtx {
            index: &mut self.index,
            file: self.file,
            config: &self.config,
        }
        .run(
            window,
            aggs,
            StopRule::IoBudget {
                remaining: max_objects,
            },
            None,
        )
    }

    /// Metadata-only estimate against the engine's current index state
    /// (no I/O, no adaptation).
    pub fn estimate(&self, window: &Rect, aggs: &[AggregateFunction]) -> Result<ApproxResult> {
        estimate_readonly(&self.index, &self.config, window, aggs)
    }
}

/// Runs one accuracy-constrained evaluation against an externally owned
/// index (the building block for [`crate::concurrent::SharedIndex`]).
pub fn evaluate_on(
    index: &mut ValinorIndex,
    file: &dyn RawFile,
    config: &EngineConfig,
    window: &Rect,
    aggs: &[AggregateFunction],
    phi: f64,
) -> Result<ApproxResult> {
    config.validate()?;
    validate_phi(phi)?;
    EvalCtx {
        index,
        file,
        config,
    }
    .run(window, aggs, StopRule::Accuracy { phi }, None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EagerRefinement;
    use crate::policy::SelectionPolicy;
    use pai_index::init::{build, GridSpec, InitConfig};
    use pai_index::MetadataPolicy;
    use pai_storage::ground_truth::window_truth;
    use pai_storage::{CsvFormat, DatasetSpec, MemFile};

    fn dataset(rows: u64, seed: u64) -> (MemFile, DatasetSpec) {
        let spec = DatasetSpec {
            rows,
            columns: 4,
            seed,
            ..Default::default()
        };
        (spec.build_mem(CsvFormat::default()).unwrap(), spec)
    }

    fn engine<'f>(file: &'f MemFile, spec: &DatasetSpec, grid: usize) -> ApproximateEngine<'f> {
        let init = InitConfig {
            grid: GridSpec::Fixed { nx: grid, ny: grid },
            domain: Some(spec.domain),
            metadata: MetadataPolicy::AllNumeric,
        };
        let (idx, _) = build(file, &init).unwrap();
        ApproximateEngine::new(idx, file, EngineConfig::paper_evaluation()).unwrap()
    }

    #[test]
    fn ci_contains_truth_and_bound_met() {
        let (file, spec) = dataset(3000, 7);
        let mut eng = engine(&file, &spec, 6);
        let window = Rect::new(150.0, 650.0, 200.0, 700.0);
        let aggs = [AggregateFunction::Sum(2), AggregateFunction::Mean(2)];
        let res = eng.evaluate(&window, &aggs, 0.05).unwrap();
        assert!(res.met_constraint);
        assert!(res.error_bound <= 0.05);

        let truth = window_truth(&file, &window, &[2]).unwrap();
        let ci_sum = res.cis[0].unwrap();
        assert!(
            ci_sum.contains(truth[0].stats.sum()),
            "sum CI {ci_sum} must contain truth {}",
            truth[0].stats.sum()
        );
        let ci_mean = res.cis[1].unwrap();
        assert!(ci_mean.contains(truth[0].stats.mean().unwrap()));
        eng.index().validate_invariants().unwrap();
    }

    #[test]
    fn looser_phi_reads_less() {
        let (file, spec) = dataset(5000, 13);
        let window = Rect::new(100.0, 600.0, 100.0, 600.0);
        let aggs = [AggregateFunction::Mean(2)];
        let mut reads = Vec::new();
        for phi in [0.0, 0.01, 0.05, 0.25] {
            let mut eng = engine(&file, &spec, 6);
            let res = eng.evaluate(&window, &aggs, phi).unwrap();
            assert!(res.met_constraint, "phi={phi}");
            reads.push(res.stats.io.objects_read);
        }
        // Monotone: tighter constraints cannot read fewer objects.
        for w in reads.windows(2) {
            assert!(
                w[0] >= w[1],
                "reads must not increase with looser phi: {reads:?}"
            );
        }
        // And the extremes must actually differ on this workload.
        assert!(
            reads[0] > reads[3],
            "exact should read more than 25%: {reads:?}"
        );
    }

    #[test]
    fn phi_zero_matches_exact_engine() {
        let (file, spec) = dataset(2000, 21);
        let window = Rect::new(300.0, 800.0, 100.0, 700.0);
        let aggs = [
            AggregateFunction::Count,
            AggregateFunction::Sum(3),
            AggregateFunction::Min(3),
            AggregateFunction::Max(3),
        ];
        let mut approx = engine(&file, &spec, 5);
        let a = approx.evaluate_exact(&window, &aggs).unwrap();

        let init = InitConfig {
            grid: GridSpec::Fixed { nx: 5, ny: 5 },
            domain: Some(spec.domain),
            metadata: MetadataPolicy::AllNumeric,
        };
        let (idx, _) = build(&file, &init).unwrap();
        let mut exact =
            pai_index::ExactEngine::new(idx, &file, pai_index::AdaptConfig::default()).unwrap();
        let e = exact.evaluate(&window, &aggs).unwrap();

        for (i, (av, ev)) in a.values.iter().zip(&e.values).enumerate() {
            match (av.as_f64(), ev.as_f64()) {
                (Some(x), Some(y)) => {
                    assert!(
                        (x - y).abs() <= 1e-6 * (1.0 + y.abs()),
                        "agg {i}: {x} vs {y}"
                    )
                }
                (None, None) => {}
                other => panic!("agg {i}: {other:?}"),
            }
        }
        assert_eq!(a.error_bound, 0.0);
    }

    #[test]
    fn count_queries_are_free() {
        let (file, spec) = dataset(1000, 3);
        let mut eng = engine(&file, &spec, 4);
        file.counters().reset();
        let res = eng
            .evaluate(
                &Rect::new(0.0, 400.0, 0.0, 400.0),
                &[AggregateFunction::Count],
                0.0,
            )
            .unwrap();
        assert_eq!(res.stats.io.objects_read, 0, "counts come from the index");
        assert_eq!(res.error_bound, 0.0);
        assert_eq!(res.stats.tiles_processed, 0, "no adaptation needed at all");
    }

    #[test]
    fn met_constraint_reported_honestly() {
        let (file, spec) = dataset(800, 5);
        let mut eng = engine(&file, &spec, 3);
        let res = eng
            .evaluate(
                &Rect::new(100.0, 900.0, 100.0, 900.0),
                &[AggregateFunction::Sum(2)],
                1e-15,
            )
            .unwrap();
        // With phi this tight every candidate gets processed; the result is
        // exact, so the bound is 0 and the constraint is met.
        assert!(res.met_constraint);
        assert_eq!(res.stats.tiles_processed, res.stats.tiles_partial);
    }

    #[test]
    fn eager_refinement_processes_extra_tiles() {
        let (file, spec) = dataset(4000, 31);
        let window = Rect::new(100.0, 700.0, 100.0, 700.0);
        let aggs = [AggregateFunction::Mean(2)];

        let mk = |eager| {
            let init = InitConfig {
                grid: GridSpec::Fixed { nx: 6, ny: 6 },
                domain: Some(spec.domain),
                metadata: MetadataPolicy::AllNumeric,
            };
            let (idx, _) = build(&file, &init).unwrap();
            ApproximateEngine::new(
                idx,
                &file,
                EngineConfig {
                    eager,
                    ..EngineConfig::paper_evaluation()
                },
            )
            .unwrap()
        };
        let mut lazy = mk(EagerRefinement::Off);
        let rl = lazy.evaluate(&window, &aggs, 0.10).unwrap();
        let mut eager = mk(EagerRefinement::ExtraTiles(3));
        let re = eager.evaluate(&window, &aggs, 0.10).unwrap();
        assert!(re.stats.tiles_processed >= rl.stats.tiles_processed);
        assert!(
            re.error_bound <= rl.error_bound + 1e-12,
            "extra work can only tighten"
        );
    }

    #[test]
    fn all_policies_satisfy_constraint() {
        let (file, spec) = dataset(3000, 41);
        let window = Rect::new(200.0, 700.0, 200.0, 700.0);
        let aggs = [AggregateFunction::Sum(2)];
        for policy in [
            SelectionPolicy::ScoreGreedy { alpha: 1.0 },
            SelectionPolicy::ScoreGreedy { alpha: 0.5 },
            SelectionPolicy::ScoreGreedy { alpha: 0.0 },
            SelectionPolicy::CostBenefit,
            SelectionPolicy::Random { seed: 7 },
        ] {
            let init = InitConfig {
                grid: GridSpec::Fixed { nx: 6, ny: 6 },
                domain: Some(spec.domain),
                metadata: MetadataPolicy::AllNumeric,
            };
            let (idx, _) = build(&file, &init).unwrap();
            let mut eng = ApproximateEngine::new(
                idx,
                &file,
                EngineConfig {
                    policy,
                    ..EngineConfig::paper_evaluation()
                },
            )
            .unwrap();
            let res = eng.evaluate(&window, &aggs, 0.05).unwrap();
            assert!(res.met_constraint, "{}", policy.name());
            let truth = window_truth(&file, &window, &[2]).unwrap();
            assert!(
                res.cis[0].unwrap().contains(truth[0].stats.sum()),
                "{} CI must contain truth",
                policy.name()
            );
        }
    }

    #[test]
    fn metadata_free_init_still_sound() {
        let (file, spec) = dataset(1500, 57);
        let init = InitConfig {
            grid: GridSpec::Fixed { nx: 4, ny: 4 },
            domain: Some(spec.domain),
            metadata: MetadataPolicy::None,
        };
        let (idx, _) = build(&file, &init).unwrap();
        let mut eng = ApproximateEngine::new(idx, &file, EngineConfig::paper_evaluation()).unwrap();
        let window = Rect::new(100.0, 600.0, 100.0, 600.0);
        // Without init metadata or global bounds, every tile is unbounded:
        // the engine must process its way to a sound answer.
        let aggs = [AggregateFunction::Sum(2)];
        let res = eng.evaluate(&window, &aggs, 0.05).unwrap();
        assert!(res.met_constraint);
        // Fully-resolved answers give point CIs; compare with the tolerant
        // verifier (float merge order differs from the sequential scan).
        crate::verify::assert_verified(
            &file,
            &window,
            &aggs,
            &res,
            crate::bound::NormalizationMode::Estimate,
        );
    }

    #[test]
    fn invalid_phi_rejected() {
        let (file, spec) = dataset(100, 1);
        let mut eng = engine(&file, &spec, 2);
        let w = Rect::new(0.0, 1.0, 0.0, 1.0);
        assert!(eng.evaluate(&w, &[AggregateFunction::Count], -0.5).is_err());
        assert!(eng
            .evaluate(&w, &[AggregateFunction::Count], f64::NAN)
            .is_err());
    }

    #[test]
    fn adaptation_accumulates_across_queries() {
        let (file, spec) = dataset(6000, 77);
        let mut eng = engine(&file, &spec, 6);
        let aggs = [AggregateFunction::Mean(2)];
        let w1 = Rect::new(100.0, 500.0, 100.0, 500.0);
        let r1 = eng.evaluate(&w1, &aggs, 0.01).unwrap();
        // Re-pose the same query: the index kept its adaptation.
        let r2 = eng.evaluate(&w1, &aggs, 0.01).unwrap();
        assert!(
            r2.stats.io.objects_read < r1.stats.io.objects_read.max(1),
            "second pass should be cheaper: {} vs {}",
            r2.stats.io.objects_read,
            r1.stats.io.objects_read
        );
    }

    // ---- I/O-budget mode ---------------------------------------------------

    #[test]
    fn io_budget_is_respected_exactly() {
        let (file, spec) = dataset(4000, 91);
        let window = Rect::new(150.0, 650.0, 150.0, 650.0);
        let aggs = [AggregateFunction::Sum(2)];
        for budget in [0u64, 50, 200, 1000, u64::MAX] {
            let mut eng = engine(&file, &spec, 6);
            file.counters().reset();
            let res = eng.evaluate_with_io_budget(&window, &aggs, budget).unwrap();
            assert!(
                res.stats.io.objects_read <= budget,
                "budget {budget}: read {}",
                res.stats.io.objects_read
            );
            assert!(res.met_constraint, "budget mode has no constraint to miss");
            assert_eq!(res.phi, f64::INFINITY);
            // Whatever was achieved, the CI still contains the truth.
            let truth = window_truth(&file, &window, &[2]).unwrap();
            if let Some(ci) = res.cis[0] {
                assert!(
                    ci.contains(truth[0].stats.sum())
                        || (truth[0].stats.sum() - ci.lo()).abs() < 1e-9 * (1.0 + ci.lo().abs())
                        || (truth[0].stats.sum() - ci.hi()).abs() < 1e-9 * (1.0 + ci.hi().abs()),
                    "budget {budget}: truth escaped CI"
                );
            }
        }
    }

    #[test]
    fn larger_budget_tightens_bound() {
        let (file, spec) = dataset(4000, 92);
        let window = Rect::new(150.0, 650.0, 150.0, 650.0);
        let aggs = [AggregateFunction::Mean(2)];
        let mut bounds = Vec::new();
        for budget in [0u64, 100, 500, 5000] {
            let mut eng = engine(&file, &spec, 6);
            let res = eng.evaluate_with_io_budget(&window, &aggs, budget).unwrap();
            bounds.push(res.error_bound);
        }
        for w in bounds.windows(2) {
            assert!(w[1] <= w[0] + 1e-12, "bounds must tighten: {bounds:?}");
        }
        assert!(bounds[0] > bounds[3], "extremes must differ: {bounds:?}");
    }

    #[test]
    fn zero_budget_equals_readonly_estimate() {
        let (file, spec) = dataset(2000, 93);
        let window = Rect::new(200.0, 700.0, 200.0, 700.0);
        let aggs = [AggregateFunction::Sum(2)];
        let mut eng = engine(&file, &spec, 5);
        let ro = eng.estimate(&window, &aggs).unwrap();
        let budget0 = eng.evaluate_with_io_budget(&window, &aggs, 0).unwrap();
        assert_eq!(ro.values[0].as_f64(), budget0.values[0].as_f64());
        assert_eq!(ro.error_bound, budget0.error_bound);
        assert_eq!(budget0.stats.io.objects_read, 0);
    }

    #[test]
    fn traced_evaluation_converges_monotonically() {
        let (file, spec) = dataset(4000, 95);
        let window = Rect::new(150.0, 650.0, 150.0, 650.0);
        let aggs = [AggregateFunction::Mean(2)];
        let mut eng = engine(&file, &spec, 6);
        let (res, trace) = eng.evaluate_traced(&window, &aggs, 0.01).unwrap();
        assert!(res.met_constraint);
        assert_eq!(
            trace.len(),
            res.stats.tiles_processed + 1,
            "one step per tile + initial"
        );
        // Bounds tighten monotonically; I/O grows monotonically.
        for w in trace.windows(2) {
            assert!(w[1].error_bound <= w[0].error_bound + 1e-12);
            assert!(w[1].objects_read >= w[0].objects_read);
            assert!(w[1].bytes_read >= w[0].bytes_read);
            assert_eq!(w[1].tiles_processed, w[0].tiles_processed + 1);
        }
        // The final step's meters match the result's I/O accounting.
        let last = trace.last().unwrap();
        assert_eq!(last.objects_read, res.stats.io.objects_read);
        assert_eq!(last.bytes_read, res.stats.io.bytes_read);
        assert_eq!(trace.last().unwrap().error_bound, res.error_bound);
        // Every intermediate estimate is within its own (wider) bound of
        // the final answer — the progressive rendering never lies.
        let final_est = res.values[0].as_f64().unwrap();
        for s in &trace {
            if let Some(e) = s.estimate {
                if s.error_bound.is_finite() && e.abs() > 1e-9 {
                    assert!(
                        (e - final_est).abs() <= s.error_bound * e.abs() * 2.0 + 1e-6,
                        "step {} estimate {e} too far from final {final_est} (bound {})",
                        s.tiles_processed,
                        s.error_bound
                    );
                }
            }
        }
    }

    #[test]
    fn binary_backend_matches_csv_with_less_io() {
        let spec = DatasetSpec {
            rows: 3000,
            columns: 4,
            seed: 7,
            ..Default::default()
        };
        let csv = spec.build_mem(CsvFormat::default()).unwrap();
        let bin = spec.build_bin_mem().unwrap();
        let init = InitConfig {
            grid: GridSpec::Fixed { nx: 6, ny: 6 },
            domain: Some(spec.domain),
            metadata: MetadataPolicy::AllNumeric,
        };
        let window = Rect::new(150.0, 650.0, 200.0, 700.0);
        let aggs = [AggregateFunction::Sum(2), AggregateFunction::Mean(3)];

        let (ci, _) = build(&csv, &init).unwrap();
        let mut ce = ApproximateEngine::new(ci, &csv, EngineConfig::paper_evaluation()).unwrap();
        let rc = ce.evaluate(&window, &aggs, 0.05).unwrap();

        let (bi, _) = build(&bin, &init).unwrap();
        let mut be = ApproximateEngine::new(bi, &bin, EngineConfig::paper_evaluation()).unwrap();
        let rb = be.evaluate(&window, &aggs, 0.05).unwrap();

        // Same scan order, same values, same adaptation loop: identical
        // approximate answers and trajectory on either backend.
        for (c, b) in rc.values.iter().zip(&rb.values) {
            assert_eq!(c.as_f64(), b.as_f64());
        }
        assert_eq!(rc.error_bound, rb.error_bound);
        assert_eq!(rc.stats.tiles_processed, rb.stats.tiles_processed);
        assert_eq!(rc.stats.tiles_split, rb.stats.tiles_split);
        assert_eq!(rc.stats.io.objects_read, rb.stats.io.objects_read);
        // The binary backend fetches values, not whole text records.
        assert!(rb.stats.io.objects_read > 0, "workload must adapt");
        assert!(
            rb.stats.io.bytes_read < rc.stats.io.bytes_read,
            "binary adaptation reads must be cheaper: {} vs {}",
            rb.stats.io.bytes_read,
            rc.stats.io.bytes_read
        );
        // The CI really contains the truth on the binary path too.
        let truth = window_truth(&bin, &window, &[2]).unwrap();
        assert!(rb.cis[0].unwrap().contains(truth[0].stats.sum()));
    }

    #[test]
    fn zone_backend_matches_others_with_less_io() {
        let spec = DatasetSpec {
            rows: 3000,
            columns: 4,
            seed: 7,
            ..Default::default()
        };
        let bin = spec.build_bin_mem().unwrap();
        let zone = spec.build_zone_mem().unwrap();
        let init = InitConfig {
            grid: GridSpec::Fixed { nx: 6, ny: 6 },
            domain: Some(spec.domain),
            metadata: MetadataPolicy::AllNumeric,
        };
        let window = Rect::new(150.0, 650.0, 200.0, 700.0);
        let aggs = [AggregateFunction::Sum(2), AggregateFunction::Mean(3)];

        let (bi, _) = build(&bin, &init).unwrap();
        let mut be = ApproximateEngine::new(bi, &bin, EngineConfig::paper_evaluation()).unwrap();
        let rb = be.evaluate(&window, &aggs, 0.05).unwrap();

        let (zi, _) = build(&zone, &init).unwrap();
        let mut ze = ApproximateEngine::new(zi, &zone, EngineConfig::paper_evaluation()).unwrap();
        let rz = ze.evaluate(&window, &aggs, 0.05).unwrap();

        // Identical answers and trajectory — the compression and pushdown
        // are invisible except through the meters.
        for (b, z) in rb.values.iter().zip(&rz.values) {
            assert_eq!(b.as_f64(), z.as_f64());
        }
        assert_eq!(rb.error_bound, rz.error_bound);
        assert_eq!(rb.stats.tiles_processed, rz.stats.tiles_processed);
        assert_eq!(rb.stats.io.objects_read, rz.stats.io.objects_read);
        assert!(rz.stats.io.objects_read > 0, "workload must adapt");
        // Bit-packed fetches move fewer bytes than 8-byte-per-value PaiBin.
        assert!(
            rz.stats.io.bytes_read < rb.stats.io.bytes_read,
            "zone adaptation reads must be cheaper: {} vs {}",
            rz.stats.io.bytes_read,
            rb.stats.io.bytes_read
        );
        // Both block-structured backends meter their block touches.
        assert!(rz.stats.io.blocks_read > 0);
        assert!(rb.stats.io.blocks_read > 0);
        let truth = window_truth(&zone, &window, &[2]).unwrap();
        assert!(rz.cis[0].unwrap().contains(truth[0].stats.sum()));
    }

    #[test]
    fn traced_evaluation_carries_block_meters() {
        let spec = DatasetSpec {
            rows: 3000,
            columns: 4,
            seed: 11,
            ..Default::default()
        };
        let zone = spec.build_zone_mem().unwrap();
        let init = InitConfig {
            grid: GridSpec::Fixed { nx: 6, ny: 6 },
            domain: Some(spec.domain),
            metadata: MetadataPolicy::AllNumeric,
        };
        let (zi, _) = build(&zone, &init).unwrap();
        let mut eng = ApproximateEngine::new(zi, &zone, EngineConfig::paper_evaluation()).unwrap();
        let (res, trace) = eng
            .evaluate_traced(
                &Rect::new(150.0, 650.0, 150.0, 650.0),
                &[AggregateFunction::Mean(2)],
                0.01,
            )
            .unwrap();
        assert!(res.met_constraint);
        for w in trace.windows(2) {
            assert!(w[1].blocks_read >= w[0].blocks_read, "monotone block I/O");
        }
        let last = trace.last().unwrap();
        assert_eq!(last.blocks_read, res.stats.io.blocks_read);
        assert_eq!(last.blocks_skipped, res.stats.io.blocks_skipped);
        assert!(last.blocks_read > 0, "zone fetches are block-metered");
    }

    #[test]
    fn readonly_estimate_does_not_adapt() {
        let (file, spec) = dataset(2000, 94);
        let window = Rect::new(200.0, 700.0, 200.0, 700.0);
        let eng = engine(&file, &spec, 5);
        let leaves_before = eng.index().leaf_count();
        file.counters().reset();
        let res = eng
            .estimate(&window, &[AggregateFunction::Mean(2)])
            .unwrap();
        assert_eq!(file.counters().objects_read(), 0);
        assert_eq!(eng.index().leaf_count(), leaves_before);
        assert!(res.error_bound.is_finite());
    }

    fn engine_cfg<'f>(
        file: &'f MemFile,
        spec: &DatasetSpec,
        grid: usize,
        metadata: MetadataPolicy,
        config: EngineConfig,
    ) -> ApproximateEngine<'f> {
        let init = InitConfig {
            grid: GridSpec::Fixed { nx: grid, ny: grid },
            domain: Some(spec.domain),
            metadata,
        };
        let (idx, _) = build(file, &init).unwrap();
        ApproximateEngine::new(idx, file, config).unwrap()
    }

    #[test]
    fn synopsis_hit_answers_with_zero_data_io() {
        let (file, spec) = dataset(3000, 21);
        let cfg = EngineConfig::paper_evaluation().with_synopsis();
        let mut eng = engine_cfg(&file, &spec, 6, MetadataPolicy::AllNumeric, cfg);
        // A window containing every block's envelope: all blocks fully
        // covered, so the synopsis answer is exact and meets any phi.
        let window = Rect::new(-1e9, 1e9, -1e9, 1e9);
        let aggs = [
            AggregateFunction::Sum(2),
            AggregateFunction::Mean(2),
            AggregateFunction::Count,
        ];
        // Warm the lazily-computed synopses: on scan-based backends the
        // one-time derivation pays a metered scan (zone/http read them
        // from the header instead); the *query* itself must then be free.
        let _ = file.block_synopses();
        file.counters().reset();
        let res = eng.evaluate(&window, &aggs, 0.05).unwrap();
        assert!(res.met_constraint);
        assert_eq!(res.stats.io.objects_read, 0, "zero data I/O on a hit");
        assert_eq!(res.stats.io.read_calls, 0);
        assert_eq!(res.stats.io.fetch_wall_us, 0);
        assert_eq!(res.stats.io.synopsis_hits, 1);
        assert!(res.stats.io.synopsis_blocks > 0);
        assert!(res.stats.io.synopsis_bytes > 0);
        let truth = window_truth(&file, &window, &[2]).unwrap();
        let ci = res.cis[0].unwrap();
        let t = truth[0].stats.sum();
        assert!(
            ci.contains(t) || (t - ci.lo()).abs() < 1e-9 * (1.0 + t.abs()),
            "truth {t} escaped synopsis CI {ci}"
        );
        assert_eq!(res.values[2], AggregateValue::Count(3000));
    }

    #[test]
    fn synopsis_hit_trace_is_a_single_step() {
        let (file, spec) = dataset(2000, 33);
        let cfg = EngineConfig::paper_evaluation().with_synopsis();
        let mut eng = engine_cfg(&file, &spec, 5, MetadataPolicy::AllNumeric, cfg);
        let window = Rect::new(-1e9, 1e9, -1e9, 1e9);
        let (res, trace) = eng
            .evaluate_traced(&window, &[AggregateFunction::Mean(3)], 0.1)
            .unwrap();
        assert_eq!(res.stats.io.synopsis_hits, 1);
        assert_eq!(trace.len(), 1, "hit = one metadata-only step");
        assert_eq!(trace[0].tiles_processed, 0);
        assert_eq!(trace[0].synopsis_hits, 1);
        assert!(trace[0].synopsis_bytes > 0);
        assert_eq!(trace[0].objects_read, 0);
    }

    #[test]
    fn synopsis_miss_is_identical_to_synopsis_off() {
        // phi = 0 on a window that cuts blocks: the synopsis CI has width,
        // so the attempt misses and the adaptation path must be untouched.
        let (file, spec) = dataset(3000, 44);
        let _ = file.block_synopses();
        let window = Rect::new(150.0, 650.0, 200.0, 700.0);
        let aggs = [AggregateFunction::Sum(2), AggregateFunction::Mean(2)];
        let mut on = engine_cfg(
            &file,
            &spec,
            6,
            MetadataPolicy::AllNumeric,
            EngineConfig::paper_evaluation().with_synopsis(),
        );
        let mut off = engine_cfg(
            &file,
            &spec,
            6,
            MetadataPolicy::AllNumeric,
            EngineConfig::paper_evaluation(),
        );
        let ra = on.evaluate(&window, &aggs, 0.0).unwrap();
        let rb = off.evaluate(&window, &aggs, 0.0).unwrap();
        assert_eq!(ra.stats.io.synopsis_hits, 0, "phi = 0 cut window misses");
        assert_eq!(ra.values, rb.values);
        assert_eq!(ra.cis, rb.cis);
        assert_eq!(ra.error_bound, rb.error_bound);
        assert_eq!(ra.stats.io.objects_read, rb.stats.io.objects_read);
    }

    #[test]
    fn metadata_free_cold_start_bounded_by_seeding() {
        let (file, spec) = dataset(2500, 55);
        let window = Rect::new(150.0, 650.0, 200.0, 700.0);
        let aggs = [AggregateFunction::Sum(2)];
        // Without synopses a None-policy session starts unbounded.
        let mut off = engine_cfg(
            &file,
            &spec,
            6,
            MetadataPolicy::None,
            EngineConfig::paper_evaluation(),
        );
        let (_, trace_off) = off.evaluate_traced(&window, &aggs, 0.0).unwrap();
        assert!(
            trace_off[0].error_bound.is_infinite(),
            "no metadata, no global bounds: the step-0 answer is unbounded"
        );
        // With synopses the pass seeds global bounds before assessment, so
        // even the metadata-only step 0 is a sound finite interval.
        let mut on = engine_cfg(
            &file,
            &spec,
            6,
            MetadataPolicy::None,
            EngineConfig::paper_evaluation().with_synopsis(),
        );
        let (res_on, trace_on) = on.evaluate_traced(&window, &aggs, 0.0).unwrap();
        assert!(
            trace_on[0].error_bound.is_finite(),
            "seeded global bounds make step 0 bounded"
        );
        // Both converge to the same exact answer.
        let res_off = off.evaluate(&window, &aggs, 0.0).unwrap();
        let (a, b) = (
            res_on.values[0].as_f64().unwrap(),
            res_off.values[0].as_f64().unwrap(),
        );
        assert!((a - b).abs() <= 1e-9 * (1.0 + b.abs()), "{a} vs {b}");
    }
}
