//! Confidence-interval assembly and approximate-value estimation (§3.1).
//!
//! For each aggregate the paper defines a *query confidence interval* built
//! from tile metadata, guaranteed to contain the exact answer:
//!
//! * `sum`  — exact part plus `Σ count(t∩Q)·[min_A(t), max_A(t)]` over the
//!   bounded tiles;
//! * `mean` — the sum interval divided by the exact selected count;
//! * `min`/`max` — exact candidates joined with the bounded tiles'
//!   `[min, max]` envelopes via elementwise min/max;
//! * `count` — always exact (axis values live in the index);
//! * `variance`/`stddev` — extensions with conservative Popoviciu-style
//!   bounds (`var ≤ (range/2)²`), collapsing to exact values once every
//!   contribution is resolved.
//!
//! The *approximate value* uses exact contributions where available and a
//! configurable point estimate (default: interval midpoint, the paper's
//! "mean value derived from min and max") for bounded tiles.

use pai_common::{AggregateFunction, AggregateValue, Interval};

use crate::config::ValueEstimator;
use crate::state::QueryState;

/// An aggregate's approximate value together with its confidence interval.
#[derive(Debug, Clone, PartialEq)]
pub struct AggregateEstimate {
    /// The approximate value reported to the user.
    pub value: AggregateValue,
    /// Deterministic confidence interval containing the exact answer;
    /// `None` when the selection is empty (nothing to bound) or when the
    /// interval is unbounded (see [`Self::unbounded`]).
    pub ci: Option<Interval>,
    /// True when some candidate tile has no bounds at all for the needed
    /// attribute — the CI is effectively infinite and the tile must be
    /// processed before any constraint can be met.
    pub unbounded: bool,
}

impl AggregateEstimate {
    fn exact(value: AggregateValue, point: Option<f64>) -> Self {
        AggregateEstimate {
            value,
            ci: point.map(Interval::point),
            unbounded: false,
        }
    }

    fn empty() -> Self {
        AggregateEstimate {
            value: AggregateValue::Empty,
            ci: None,
            unbounded: false,
        }
    }

    fn unbounded_with(value: AggregateValue) -> Self {
        AggregateEstimate {
            value,
            ci: None,
            unbounded: true,
        }
    }
}

/// Computes the approximate value and confidence interval for one aggregate
/// given the current query state.
pub fn estimate_aggregate(
    agg: &AggregateFunction,
    state: &QueryState,
    estimator: ValueEstimator,
    assume_non_null: bool,
) -> AggregateEstimate {
    match *agg {
        AggregateFunction::Count => AggregateEstimate::exact(
            AggregateValue::Count(state.selected_total),
            Some(state.selected_total as f64),
        ),
        AggregateFunction::Sum(a) => {
            sum_estimate(state, state.attr_pos(a), estimator, assume_non_null)
        }
        AggregateFunction::Mean(a) => {
            mean_estimate(state, state.attr_pos(a), estimator, assume_non_null)
        }
        AggregateFunction::Min(a) => {
            extremum_estimate(state, state.attr_pos(a), estimator, assume_non_null, true)
        }
        AggregateFunction::Max(a) => {
            extremum_estimate(state, state.attr_pos(a), estimator, assume_non_null, false)
        }
        AggregateFunction::Variance(a) => {
            variance_estimate(state, state.attr_pos(a), estimator, false)
        }
        AggregateFunction::StdDev(a) => {
            variance_estimate(state, state.attr_pos(a), estimator, true)
        }
    }
}

/// Sum: exact accumulator + per-candidate `count·[min,max]` intervals.
fn sum_estimate(
    state: &QueryState,
    i: usize,
    estimator: ValueEstimator,
    assume_non_null: bool,
) -> AggregateEstimate {
    let exact_part = state.exact[i].sum();
    let mut ci = Interval::point(exact_part);
    let mut estimate = exact_part;
    let mut unbounded = false;
    for c in &state.candidates {
        match c.sum_bounds(i, assume_non_null) {
            Some(iv) => {
                ci = ci.add(&iv);
                estimate += estimator.pick(&iv);
            }
            None => unbounded = true,
        }
    }
    if unbounded {
        return AggregateEstimate::unbounded_with(AggregateValue::Float(estimate));
    }
    AggregateEstimate {
        value: AggregateValue::Float(ci.clamp(estimate)),
        ci: Some(ci),
        unbounded: false,
    }
}

/// Mean: the sum interval divided by the exact selected count. Under the
/// conservative NULL model the non-null count is unknown, so the CI widens
/// to the hull of the per-value bounds (the mean of any value multiset lies
/// within its value range).
fn mean_estimate(
    state: &QueryState,
    i: usize,
    estimator: ValueEstimator,
    assume_non_null: bool,
) -> AggregateEstimate {
    if state.selected_total == 0 {
        return AggregateEstimate::empty();
    }
    let n = state.selected_total as f64;
    if assume_non_null {
        let sum = sum_estimate(state, i, estimator, true);
        if sum.unbounded {
            return AggregateEstimate::unbounded_with(match sum.value {
                AggregateValue::Float(v) => AggregateValue::Float(v / n),
                other => other,
            });
        }
        let ci = sum.ci.expect("bounded sum has a CI").div_scalar(n);
        let est = match sum.value {
            AggregateValue::Float(v) => ci.clamp(v / n),
            _ => ci.midpoint(),
        };
        return AggregateEstimate {
            value: AggregateValue::Float(est),
            ci: Some(ci),
            unbounded: false,
        };
    }
    // Conservative: mean ∈ hull(all value bounds ∪ exact range).
    let mut hull: Option<Interval> = state.exact[i].range();
    let mut unbounded = false;
    for c in &state.candidates {
        match c.value_bounds(i) {
            Some(iv) => hull = Some(hull.map_or(iv, |h| h.hull(&iv))),
            None => unbounded = true,
        }
    }
    match (hull, unbounded) {
        (Some(h), false) => AggregateEstimate {
            value: AggregateValue::Float(estimator.pick(&h)),
            ci: Some(h),
            unbounded: false,
        },
        (Some(h), true) => {
            AggregateEstimate::unbounded_with(AggregateValue::Float(estimator.pick(&h)))
        }
        (None, _) => AggregateEstimate::empty(),
    }
}

/// Min/Max: elementwise combination of exact values (certain) and candidate
/// envelopes. The lower (resp. upper) bound is always sound; the opposite
/// bound needs at least one *certain* contribution — a tile guaranteed to
/// contribute a real value.
fn extremum_estimate(
    state: &QueryState,
    i: usize,
    estimator: ValueEstimator,
    assume_non_null: bool,
    is_min: bool,
) -> AggregateEstimate {
    if state.selected_total == 0 {
        return AggregateEstimate::empty();
    }
    // Outer accumulators. For min: `outer` tracks the lowest possible value,
    // `certain` the lowest value guaranteed to be achieved or beaten.
    let mut outer: Option<f64> = None;
    let mut certain: Option<f64> = None;
    let mut est: Option<f64> = None;
    let mut unbounded = false;

    let fold = |acc: &mut Option<f64>, v: f64| {
        *acc = Some(match *acc {
            Some(cur) => {
                if is_min {
                    cur.min(v)
                } else {
                    cur.max(v)
                }
            }
            None => v,
        });
    };

    // Exact part: an achieved extremum (certain on both sides).
    let exact_ext = if is_min {
        state.exact[i].min()
    } else {
        state.exact[i].max()
    };
    if let Some(v) = exact_ext {
        fold(&mut outer, v);
        fold(&mut certain, v);
        fold(&mut est, v);
    }

    for c in &state.candidates {
        match c.value_bounds(i) {
            Some(iv) => {
                fold(&mut outer, if is_min { iv.lo() } else { iv.hi() });
                // The tile certainly contributes a value when NULLs are
                // assumed (or proven) absent; its worst-case extremum is the
                // opposite endpoint.
                if assume_non_null || c.certainly_non_null(i) {
                    fold(&mut certain, if is_min { iv.hi() } else { iv.lo() });
                }
                fold(&mut est, estimator.pick(&iv));
            }
            None => unbounded = true,
        }
    }

    match (outer, certain, unbounded) {
        (Some(o), Some(c), false) => {
            let ci = Interval::from_unordered(o, c);
            let value = AggregateValue::Float(ci.clamp(est.unwrap_or(o)));
            AggregateEstimate {
                value,
                ci: Some(ci),
                unbounded: false,
            }
        }
        (Some(o), _, _) => {
            AggregateEstimate::unbounded_with(AggregateValue::Float(est.unwrap_or(o)))
        }
        (None, _, _) => AggregateEstimate::empty(),
    }
}

/// Variance / standard deviation (extension): exact when fully resolved;
/// otherwise the Popoviciu bound `var ∈ [0, (range/2)²]` over the hull of
/// all value envelopes.
fn variance_estimate(
    state: &QueryState,
    i: usize,
    estimator: ValueEstimator,
    sqrt: bool,
) -> AggregateEstimate {
    if state.selected_total == 0 {
        return AggregateEstimate::empty();
    }
    if state.fully_resolved() {
        return match state.exact[i].variance() {
            Some(v) => {
                let v = if sqrt { v.sqrt() } else { v };
                AggregateEstimate::exact(AggregateValue::Float(v), Some(v))
            }
            None => AggregateEstimate::empty(),
        };
    }
    let mut hull: Option<Interval> = state.exact[i].range();
    let mut unbounded = false;
    for c in &state.candidates {
        match c.value_bounds(i) {
            Some(iv) => hull = Some(hull.map_or(iv, |h| h.hull(&iv))),
            None => unbounded = true,
        }
    }
    let Some(h) = hull else {
        return AggregateEstimate::empty();
    };
    let hi_var = (h.width() / 2.0).powi(2);
    let ci_var = Interval::new(0.0, hi_var);
    let ci = if sqrt {
        Interval::new(0.0, hi_var.sqrt())
    } else {
        ci_var
    };
    if unbounded {
        return AggregateEstimate::unbounded_with(AggregateValue::Float(estimator.pick(&ci)));
    }
    AggregateEstimate {
        value: AggregateValue::Float(estimator.pick(&ci)),
        ci: Some(ci),
        unbounded: false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::state::{Candidate, CandidateKind};
    use pai_common::RunningStats;
    use pai_index::{AttrMeta, TileId};

    fn cand(selected: u64, lo: f64, hi: f64) -> Candidate {
        Candidate {
            tile: TileId(0),
            selected,
            kind: CandidateKind::Partial,
            meta: vec![Some(AttrMeta::Bounded(Interval::new(lo, hi)))],
        }
    }

    fn cand_unbounded(selected: u64) -> Candidate {
        Candidate {
            tile: TileId(1),
            selected,
            kind: CandidateKind::Partial,
            meta: vec![None],
        }
    }

    /// State: exact part {count 2, sum 30, min 10, max 20}, one candidate
    /// with 3 selected in [0, 10].
    fn state() -> QueryState {
        QueryState::synthetic(
            vec![2],
            5,
            vec![RunningStats::from_values(&[10.0, 20.0])],
            vec![cand(3, 0.0, 10.0)],
        )
    }

    #[test]
    fn sum_ci_matches_paper_formula() {
        let e = estimate_aggregate(
            &AggregateFunction::Sum(2),
            &state(),
            ValueEstimator::Midpoint,
            true,
        );
        // Exact 30 + 3·[0,10] = [30, 60]; midpoint estimate 30 + 3·5 = 45.
        assert_eq!(e.ci, Some(Interval::new(30.0, 60.0)));
        assert_eq!(e.value, AggregateValue::Float(45.0));
        assert!(!e.unbounded);
    }

    #[test]
    fn sum_estimators() {
        for (est, expect) in [
            (ValueEstimator::Lower, 30.0),
            (ValueEstimator::Upper, 60.0),
            (ValueEstimator::Midpoint, 45.0),
        ] {
            let e = estimate_aggregate(&AggregateFunction::Sum(2), &state(), est, true);
            assert_eq!(e.value, AggregateValue::Float(expect), "{est:?}");
        }
    }

    #[test]
    fn mean_ci_divides_by_selected() {
        let e = estimate_aggregate(
            &AggregateFunction::Mean(2),
            &state(),
            ValueEstimator::Midpoint,
            true,
        );
        assert_eq!(e.ci, Some(Interval::new(6.0, 12.0)));
        assert_eq!(e.value, AggregateValue::Float(9.0));
    }

    #[test]
    fn mean_conservative_uses_value_hull() {
        let e = estimate_aggregate(
            &AggregateFunction::Mean(2),
            &state(),
            ValueEstimator::Midpoint,
            false,
        );
        // hull([10,20] exact range, [0,10] candidate) = [0,20].
        assert_eq!(e.ci, Some(Interval::new(0.0, 20.0)));
    }

    #[test]
    fn min_ci_combines_exact_and_bounded() {
        let e = estimate_aggregate(
            &AggregateFunction::Min(2),
            &state(),
            ValueEstimator::Midpoint,
            true,
        );
        // Lower: min(10, lo=0) = 0. Upper: min(10 achieved, candidate hi=10) = 10.
        assert_eq!(e.ci, Some(Interval::new(0.0, 10.0)));
        // Estimate: min(10, midpoint 5) = 5.
        assert_eq!(e.value, AggregateValue::Float(5.0));
    }

    #[test]
    fn max_ci_combines_exact_and_bounded() {
        let e = estimate_aggregate(
            &AggregateFunction::Max(2),
            &state(),
            ValueEstimator::Midpoint,
            true,
        );
        // Upper: max(20, hi=10) = 20. Lower certain: max(20, lo=0) = 20.
        assert_eq!(e.ci, Some(Interval::point(20.0)));
        assert_eq!(e.value, AggregateValue::Float(20.0));
    }

    #[test]
    fn min_conservative_null_handling() {
        // Without the non-null assumption the Bounded candidate cannot
        // certify a contribution, but the exact part still can.
        let e = estimate_aggregate(
            &AggregateFunction::Min(2),
            &state(),
            ValueEstimator::Midpoint,
            false,
        );
        assert_eq!(e.ci, Some(Interval::new(0.0, 10.0)));
        // With no exact part at all the upper bound disappears.
        let no_exact = QueryState::synthetic(
            vec![2],
            3,
            vec![RunningStats::new()],
            vec![cand(3, 0.0, 10.0)],
        );
        let e2 = estimate_aggregate(
            &AggregateFunction::Min(2),
            &no_exact,
            ValueEstimator::Midpoint,
            false,
        );
        assert!(e2.unbounded);
    }

    #[test]
    fn count_is_always_exact() {
        let e = estimate_aggregate(
            &AggregateFunction::Count,
            &state(),
            ValueEstimator::Midpoint,
            true,
        );
        assert_eq!(e.value, AggregateValue::Count(5));
        assert_eq!(e.ci, Some(Interval::point(5.0)));
    }

    #[test]
    fn unbounded_candidate_voids_ci() {
        let s = QueryState::synthetic(
            vec![2],
            4,
            vec![RunningStats::from_values(&[1.0])],
            vec![cand_unbounded(3)],
        );
        for agg in [
            AggregateFunction::Sum(2),
            AggregateFunction::Mean(2),
            AggregateFunction::Min(2),
            AggregateFunction::Variance(2),
        ] {
            let e = estimate_aggregate(&agg, &s, ValueEstimator::Midpoint, true);
            assert!(e.unbounded, "{agg}");
            assert_eq!(e.ci, None, "{agg}");
        }
    }

    #[test]
    fn empty_selection_yields_empty() {
        let s = QueryState::synthetic(vec![2], 0, vec![RunningStats::new()], vec![]);
        for agg in [
            AggregateFunction::Sum(2),
            AggregateFunction::Mean(2),
            AggregateFunction::Min(2),
            AggregateFunction::Max(2),
            AggregateFunction::Variance(2),
        ] {
            let e = estimate_aggregate(&agg, &s, ValueEstimator::Midpoint, true);
            if matches!(agg, AggregateFunction::Sum(_)) {
                // Sum over empty selection is 0, exactly.
                assert_eq!(e.value, AggregateValue::Float(0.0));
                assert_eq!(e.ci, Some(Interval::point(0.0)));
            } else {
                assert_eq!(e.value, AggregateValue::Empty, "{agg}");
            }
        }
    }

    #[test]
    fn fully_resolved_state_gives_point_intervals() {
        let s = QueryState::synthetic(
            vec![2],
            3,
            vec![RunningStats::from_values(&[1.0, 2.0, 6.0])],
            vec![],
        );
        let sum = estimate_aggregate(
            &AggregateFunction::Sum(2),
            &s,
            ValueEstimator::Midpoint,
            true,
        );
        assert_eq!(sum.ci, Some(Interval::point(9.0)));
        let mean = estimate_aggregate(
            &AggregateFunction::Mean(2),
            &s,
            ValueEstimator::Midpoint,
            true,
        );
        assert_eq!(mean.ci, Some(Interval::point(3.0)));
        let var = estimate_aggregate(
            &AggregateFunction::Variance(2),
            &s,
            ValueEstimator::Midpoint,
            true,
        );
        let expected_var = s.exact[0].variance().unwrap();
        assert_eq!(var.ci, Some(Interval::point(expected_var)));
        let sd = estimate_aggregate(
            &AggregateFunction::StdDev(2),
            &s,
            ValueEstimator::Midpoint,
            true,
        );
        assert_eq!(sd.value, AggregateValue::Float(expected_var.sqrt()));
    }

    #[test]
    fn variance_bound_contains_truth() {
        // Candidate values could be anything in [0,10]; whatever they are,
        // the variance of the combined multiset is <= (range/2)^2.
        let e = estimate_aggregate(
            &AggregateFunction::Variance(2),
            &state(),
            ValueEstimator::Midpoint,
            true,
        );
        let ci = e.ci.unwrap();
        assert_eq!(ci.lo(), 0.0);
        // hull([10,20], [0,10]) = [0,20] -> upper (20/2)^2 = 100.
        assert_eq!(ci.hi(), 100.0);
        // Worst-case truth: values {10,20} exact plus {0,0,10}: variance of
        // {10,20,0,0,10} = 56 <= 100.
        let worst = RunningStats::from_values(&[10.0, 20.0, 0.0, 0.0, 10.0]);
        assert!(worst.variance().unwrap() <= ci.hi());
    }

    #[test]
    fn estimate_always_inside_ci() {
        // Even with Lower/Upper estimators, reported values clamp into CI.
        for est in [ValueEstimator::Lower, ValueEstimator::Upper] {
            for agg in [
                AggregateFunction::Sum(2),
                AggregateFunction::Mean(2),
                AggregateFunction::Min(2),
                AggregateFunction::Max(2),
            ] {
                let e = estimate_aggregate(&agg, &state(), est, true);
                let (v, ci) = (e.value.as_f64().unwrap(), e.ci.unwrap());
                assert!(ci.contains(v), "{agg} {est:?}: {v} not in {ci}");
            }
        }
    }
}
