//! Concurrent access to one shared adaptive index.
//!
//! An exploration dashboard typically renders several linked views at once
//! (map window, heatmap, summary panel) while the user keeps interacting.
//! [`SharedIndex`] supports that pattern with a `parking_lot` read-write
//! lock and the **plan → fetch → apply** pipeline:
//!
//! * any number of **readers** run [`SharedIndex::estimate`] concurrently —
//!   metadata-only answers with confidence intervals, zero file I/O;
//! * **adaptive queries** ([`SharedIndex::evaluate`]) never hold a lock
//!   across file I/O. Each refinement round
//!   1. *plans* under the **read lock**: classifies the window, selects a
//!      batch of candidate tiles, and computes their pure refinement plans
//!      (entry snapshots + locators) — readers keep running;
//!   2. *fetches* the batched values with **no lock held** — the expensive
//!      stage, and the one that used to stall every reader. With
//!      `fetch_workers > 1` the batch's fetch units stream in overlapped,
//!      each unit's plans applying while later units are still in flight;
//!   3. *applies* each plan under **its own short write lock** with an
//!      optimistic version check ([`pai_index::still_applies`]) at that
//!      plan's apply moment: if the index changed underneath a plan
//!      (another writer split the tile), the plan is discarded and the
//!      affected region re-plans from the refined children on the next
//!      round. Answers stay sound either way; the conflicted fetch is the
//!      price of optimism, bounded by one batch per losing writer and
//!      surfaced in the stats. Per-plan locks mean readers interleave
//!      between every apply — no reader ever waits behind a whole batch.
//!
//! Lock-wait time and plan conflicts are surfaced in
//! [`QueryStats::lock_wait`] / [`QueryStats::plan_conflicts`] so dashboards
//! can watch contention. [`SharedIndex::evaluate_locked`] retains the
//! pre-pipeline behaviour (write lock across the whole query) as the
//! sequential-consistency baseline the concurrency benchmarks compare
//! against.
//!
//! The raw file itself needs no locking: [`RawFile`] implementations open
//! independent handles per batch and their meters are atomic.

use std::collections::HashMap;
use std::time::{Duration, Instant};

use pai_common::geometry::{Point2, Rect};
use pai_common::{AggregateFunction, PaiError, Result, RunningStats};
use pai_index::eval::{query_attrs, QueryStats};
use pai_index::{apply_enrich, apply_plan, still_applies, ObjectEntry, TileId, ValinorIndex};
use pai_storage::raw::{AppendReceipt, RawFile};
use parking_lot::RwLock;

use crate::config::{validate_phi, EngineConfig};
use crate::engine::{
    assess, candidate_views, estimate_readonly, evaluate_on, fetch_plans_each, plan_candidate,
    synopsis_hit, ApproxResult, BatchPlan,
};
use crate::state::QueryState;

/// A thread-safe wrapper around one index + raw file + engine config.
pub struct SharedIndex<F: RawFile> {
    index: RwLock<ValinorIndex>,
    file: F,
    config: EngineConfig,
}

impl<F: RawFile> SharedIndex<F> {
    pub fn new(index: ValinorIndex, file: F, config: EngineConfig) -> Result<Self> {
        config.validate()?;
        Ok(SharedIndex {
            index: RwLock::new(index),
            file,
            config,
        })
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    pub fn file(&self) -> &F {
        &self.file
    }

    /// Metadata-only estimate under a read lock: any number of these run in
    /// parallel, never touch the file, never mutate the index — and, since
    /// adaptive writers only take the write lock for the brief apply stage,
    /// they are never blocked behind a writer's file I/O either.
    pub fn estimate(&self, window: &Rect, aggs: &[AggregateFunction]) -> Result<ApproxResult> {
        let t0 = Instant::now();
        let index = self.index.read();
        let wait = t0.elapsed();
        let mut res = estimate_readonly(&index, &self.config, window, aggs)?;
        res.stats.lock_wait = wait;
        Ok(res)
    }

    /// Zero-I/O answer composed purely from the backend's block synopses,
    /// under a read lock: never touches the data path, never adapts the
    /// index, ticks only the synopsis meters. `Ok(None)` when the backend
    /// carries no synopses or they cannot bound some requested aggregate.
    /// Works regardless of [`EngineConfig::synopsis`] — the flag gates the
    /// *adaptive* paths' automatic synopsis-first attempt, while this
    /// method is the explicit reader entry point (dashboard panels, the
    /// concurrent stress harness).
    pub fn estimate_synopsis(
        &self,
        window: &Rect,
        aggs: &[AggregateFunction],
    ) -> Result<Option<ApproxResult>> {
        let t0 = Instant::now();
        let io0 = self.file.counters().snapshot();
        query_attrs(self.file.schema(), aggs)?;
        let Some(blocks) = self.file.block_synopses() else {
            return Ok(None);
        };
        let lw = Instant::now();
        let index = self.index.read();
        let wait = lw.elapsed();
        let classification = index.classify(window);
        let Some(hit) = synopsis_hit(
            &index,
            &self.file,
            &self.config,
            blocks,
            window,
            aggs,
            classification.selected_total,
            f64::INFINITY,
        ) else {
            return Ok(None);
        };
        let stats = QueryStats {
            selected: classification.selected_total,
            tiles_full: classification.full.len(),
            tiles_partial: classification.partial.len(),
            io: self.file.counters().snapshot().since(&io0),
            elapsed: t0.elapsed(),
            lock_wait: wait,
            ..Default::default()
        };
        Ok(Some(ApproxResult { stats, ..hit }))
    }

    /// Accuracy-constrained evaluation through the non-blocking pipeline;
    /// adapts the shared index so every subsequent reader starts tighter.
    ///
    /// Readers are never blocked by this method's file I/O: locks are held
    /// only for pure planning (read lock) and the in-memory apply (write
    /// lock). Concurrent writers may refine the same region; plans whose
    /// tile changed underneath them are detected by an index version check
    /// and discarded (counted in `QueryStats::plan_conflicts`), and the
    /// affected region re-plans against the winner's refined tiles on the
    /// next round.
    ///
    /// The per-round state rebuild means the exact float merge order can
    /// differ in the last ulp from [`crate::ApproximateEngine::evaluate`];
    /// the confidence intervals remain sound bounds either way.
    pub fn evaluate(
        &self,
        window: &Rect,
        aggs: &[AggregateFunction],
        phi: f64,
    ) -> Result<ApproxResult> {
        validate_phi(phi)?;
        let t0 = Instant::now();
        let io0 = self.file.counters().snapshot();
        let attrs = query_attrs(self.file.schema(), aggs)?;
        let config = &self.config;

        let mut lock_wait = Duration::ZERO;
        let mut plan_conflicts = 0usize;

        // Synopsis-first: seed metadata-free cold starts (brief write lock,
        // only when some attribute has no global bounds) and try a zero-I/O
        // answer under the read lock before entering the adaptation loop.
        if config.synopsis {
            if let Some(blocks) = self.file.block_synopses() {
                let need_seed = {
                    let index = self.index.read();
                    attrs.iter().any(|&a| index.global_bounds(a).is_none())
                };
                if need_seed {
                    let lw = Instant::now();
                    let mut index = self.index.write();
                    lock_wait += lw.elapsed();
                    crate::synopsis::seed_missing_global_bounds(&mut index, blocks, &attrs);
                }
                let lw = Instant::now();
                let index = self.index.read();
                lock_wait += lw.elapsed();
                let classification = index.classify(window);
                if let Some(hit) = synopsis_hit(
                    &index,
                    &self.file,
                    config,
                    blocks,
                    window,
                    aggs,
                    classification.selected_total,
                    phi,
                ) {
                    let stats = QueryStats {
                        selected: classification.selected_total,
                        tiles_full: classification.full.len(),
                        tiles_partial: classification.partial.len(),
                        io: self.file.counters().snapshot().since(&io0),
                        elapsed: t0.elapsed(),
                        lock_wait,
                        ..Default::default()
                    };
                    return Ok(ApproxResult { stats, ..hit });
                }
            }
        }
        // In-window stats of partial tiles this query already processed,
        // keyed by tile. Rebuilding the state from a fresh snapshot each
        // round folds these instead of re-reading (tile ids are never
        // reused, so stale keys are merely ignored).
        let mut resolved: HashMap<TileId, Vec<RunningStats>> = HashMap::new();
        let mut step = 0usize;
        let (mut tiles_processed, mut tiles_split, mut tiles_enriched) = (0usize, 0usize, 0usize);
        // Initial-classification shape, captured on the first round so the
        // reported stats mean the same thing as the sequential engine's
        // (what the query *found*, not what it left behind).
        let mut initial_shape: Option<(u64, usize, usize)> = None;

        loop {
            // ---- Stage 1: plan under the read lock (pure). ----
            let lw = Instant::now();
            let index = self.index.read();
            lock_wait += lw.elapsed();
            let classification = index.classify(window);
            let (selected, tiles_full, tiles_partial) = *initial_shape.get_or_insert((
                classification.selected_total,
                classification.full.len(),
                classification.partial.len(),
            ));
            let state = QueryState::from_classification_resolved(
                &index,
                &classification,
                &attrs,
                &resolved,
            )?;
            let (estimates, bound) = assess(config, aggs, &state);
            if state.candidates.is_empty() || bound <= phi {
                let met_constraint = bound <= phi;
                let (values, cis) = estimates.into_iter().map(|e| (e.value, e.ci)).unzip();
                let stats = QueryStats {
                    selected,
                    tiles_full,
                    tiles_partial,
                    tiles_processed,
                    tiles_split,
                    tiles_enriched,
                    io: self.file.counters().snapshot().since(&io0),
                    elapsed: t0.elapsed(),
                    lock_wait,
                    plan_conflicts,
                };
                return Ok(ApproxResult {
                    values,
                    cis,
                    error_bound: bound,
                    phi,
                    met_constraint,
                    stats,
                });
            }
            let picks = config.policy.pick_batch(
                state.candidates.len(),
                step,
                config.adapt_batch,
                |alive| candidate_views(&index, config, aggs, &state, alive),
            );
            let plans: Vec<BatchPlan> = picks
                .iter()
                .map(|&p| plan_candidate(&index, &state.candidates[p], window, &attrs, config))
                .collect::<Result<_>>()?;
            drop(index);

            // ---- Stages 2 + 3, overlapped: fetch with no lock held, apply
            // each plan under its own short write lock as its fetch unit
            // lands (later units may still be in flight). Readers — and
            // competing writers' apply stages — interleave between every
            // apply, so no one ever waits behind this writer's I/O *or*
            // behind the rest of its batch. The optimistic version check
            // runs per plan, against the index as it is at that plan's
            // apply moment: a fast path when nothing changed since
            // planning, a slow path while the tile is still a leaf (leaf
            // entries never change except by splitting the leaf).
            fetch_plans_each(&self.file, &plans, window, config, |i, values| {
                let plan = &plans[i];
                let lw = Instant::now();
                let mut index = self.index.write();
                lock_wait += lw.elapsed();
                if still_applies(&index, plan.tile(), plan.planned_version()) {
                    match plan {
                        BatchPlan::Partial(p) => {
                            let out = apply_plan(&mut index, p, window, &config.adapt, values)?;
                            tiles_split += usize::from(out.did_split);
                            resolved.insert(p.tile, out.in_window);
                            tiles_processed += 1;
                        }
                        BatchPlan::Enrich(p) => {
                            apply_enrich(&mut index, p, values)?;
                            tiles_processed += 1;
                            tiles_enriched += 1;
                        }
                    }
                } else {
                    // Concurrently split: the other writer already refined
                    // this tile, so discard the plan — its id never
                    // classifies again (children carry new ids), and the
                    // region re-plans from the refined children next round.
                    // The conflicted fetch is the price of optimism,
                    // bounded by one batch per losing writer.
                    plan_conflicts += 1;
                }
                step += 1;
                Ok(())
            })?;
        }
    }

    /// Accuracy-constrained evaluation holding the **write lock for the
    /// whole query** — the pre-pipeline behaviour, preserved as the strict
    /// sequential baseline. Readers stall for the full evaluation,
    /// including all file I/O; `concurrent_bench` measures exactly that
    /// difference. Use [`SharedIndex::evaluate`] unless you need the
    /// single-owner engine's byte-for-byte trajectory on a shared index.
    pub fn evaluate_locked(
        &self,
        window: &Rect,
        aggs: &[AggregateFunction],
        phi: f64,
    ) -> Result<ApproxResult> {
        let lw = Instant::now();
        let mut index = self.index.write();
        let wait = lw.elapsed();
        let mut res = evaluate_on(&mut index, &self.file, &self.config, window, aggs, phi)?;
        res.stats.lock_wait = wait;
        Ok(res)
    }

    /// Streaming ingest through the same plan → fetch → apply discipline
    /// as queries: the batch appends to the raw file with **no lock held**
    /// (the backend has its own append latching), then the new entries
    /// extend the index under one short write lock. Readers observe either
    /// none or all of the batch; adaptive writers racing this method are
    /// protected by the same version counter their plans already check.
    ///
    /// The whole batch is validated against the index domain *before* any
    /// mutation, so a rejected batch neither appends nor indexes — callers
    /// can retry or drop it without tearing state. Entries are indexed in
    /// append order, which keeps a streamed session's index trajectory
    /// identical to one built statically from the same base+appended rows.
    pub fn ingest(&self, rows: &[Vec<f64>]) -> Result<AppendReceipt> {
        let schema = self.file.schema();
        let (ax, ay) = (schema.x_axis(), schema.y_axis());
        {
            let index = self.index.read();
            for (i, row) in rows.iter().enumerate() {
                if row.len() != schema.len() {
                    return Err(PaiError::config(format!(
                        "ingest row {i} has {} values, schema has {} columns",
                        row.len(),
                        schema.len()
                    )));
                }
                let p = Point2::new(row[ax], row[ay]);
                if index.leaf_for_point(p).is_none() {
                    return Err(PaiError::config(format!(
                        "ingest row {i} at ({}, {}) lies outside the index domain {}",
                        p.x,
                        p.y,
                        index.domain()
                    )));
                }
            }
        }
        let receipt = self.file.append_rows(rows)?;
        let mut index = self.index.write();
        for (row, &locator) in rows.iter().zip(receipt.locators.iter()) {
            index.ingest_entry(ObjectEntry::new(row[ax], row[ay], locator), row)?;
        }
        Ok(receipt)
    }

    /// Runs a closure against a read-locked snapshot of the index (for
    /// analytics like `pai_query::analytics::heatmap`).
    pub fn with_index<R>(&self, f: impl FnOnce(&ValinorIndex) -> R) -> R {
        f(&self.index.read())
    }

    /// Consumes the wrapper, returning the index.
    pub fn into_index(self) -> ValinorIndex {
        self.index.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pai_index::init::{build, GridSpec, InitConfig};
    use pai_index::MetadataPolicy;
    use pai_storage::ground_truth::window_truth;
    use pai_storage::{CsvFormat, DatasetSpec, MemFile};
    use std::sync::Arc;

    fn shared_with(rows: u64, config: EngineConfig) -> (Arc<SharedIndex<MemFile>>, DatasetSpec) {
        let spec = DatasetSpec {
            rows,
            columns: 4,
            seed: 71,
            ..Default::default()
        };
        let file = spec.build_mem(CsvFormat::default()).unwrap();
        let init = InitConfig {
            grid: GridSpec::Fixed { nx: 6, ny: 6 },
            domain: Some(spec.domain),
            metadata: MetadataPolicy::AllNumeric,
        };
        let (index, _) = build(&file, &init).unwrap();
        (
            Arc::new(SharedIndex::new(index, file, config).unwrap()),
            spec,
        )
    }

    fn shared(rows: u64) -> (Arc<SharedIndex<MemFile>>, DatasetSpec) {
        shared_with(rows, EngineConfig::paper_evaluation())
    }

    #[test]
    fn estimates_run_without_io() {
        let (shared, _) = shared(2000);
        shared.file().counters().reset();
        let res = shared
            .estimate(
                &Rect::new(100.0, 500.0, 100.0, 500.0),
                &[AggregateFunction::Mean(2)],
            )
            .unwrap();
        assert_eq!(shared.file().counters().objects_read(), 0);
        assert!(res.error_bound.is_finite());
    }

    #[test]
    fn evaluate_adapts_shared_state_for_readers() {
        let (shared, _) = shared(3000);
        let window = Rect::new(150.0, 600.0, 150.0, 600.0);
        let aggs = [AggregateFunction::Mean(2)];
        let before = shared.estimate(&window, &aggs).unwrap();
        shared.evaluate(&window, &aggs, 0.01).unwrap();
        let after = shared.estimate(&window, &aggs).unwrap();
        assert!(
            after.error_bound <= before.error_bound + 1e-12,
            "adaptation tightens reader estimates: {} -> {}",
            before.error_bound,
            after.error_bound
        );
    }

    #[test]
    fn pipelined_evaluate_is_sound_and_meets_phi() {
        let (shared, _) = shared(4000);
        let window = Rect::new(150.0, 650.0, 200.0, 700.0);
        let aggs = [AggregateFunction::Sum(2), AggregateFunction::Mean(2)];
        let res = shared.evaluate(&window, &aggs, 0.05).unwrap();
        assert!(res.met_constraint);
        assert!(res.error_bound <= 0.05);
        let truth = window_truth(shared.file(), &window, &[2]).unwrap();
        assert!(
            res.cis[0].unwrap().contains(truth[0].stats.sum()),
            "sum CI {} must contain truth {}",
            res.cis[0].unwrap(),
            truth[0].stats.sum()
        );
        assert!(res.cis[1].unwrap().contains(truth[0].stats.mean().unwrap()));
        shared.with_index(|idx| idx.validate_invariants().unwrap());
    }

    #[test]
    fn pipelined_exact_matches_locked_exact() {
        // phi = 0 fully resolves every tile under both protocols, so the
        // values must agree to float-merge tolerance.
        let (a, _) = shared(2500);
        let (b, _) = shared(2500);
        let window = Rect::new(120.0, 640.0, 120.0, 640.0);
        let aggs = [AggregateFunction::Sum(3), AggregateFunction::Count];
        let ra = a.evaluate(&window, &aggs, 0.0).unwrap();
        let rb = b.evaluate_locked(&window, &aggs, 0.0).unwrap();
        assert_eq!(ra.error_bound, 0.0);
        assert_eq!(rb.error_bound, 0.0);
        let (x, y) = (
            ra.values[0].as_f64().unwrap(),
            rb.values[0].as_f64().unwrap(),
        );
        assert!((x - y).abs() <= 1e-9 * (1.0 + y.abs()), "{x} vs {y}");
        assert_eq!(ra.values[1].as_f64(), rb.values[1].as_f64());
    }

    #[test]
    fn repeated_pipelined_query_needs_no_io() {
        let (shared, _) = shared(3000);
        let window = Rect::new(100.0, 500.0, 100.0, 500.0);
        let aggs = [AggregateFunction::Mean(2)];
        let r1 = shared.evaluate(&window, &aggs, 0.0).unwrap();
        assert!(r1.stats.io.objects_read > 0, "first pass adapts");
        let r2 = shared.evaluate(&window, &aggs, 0.0).unwrap();
        assert!(
            r2.stats.io.objects_read < r1.stats.io.objects_read,
            "adaptation persisted: the repeat is cheaper ({} vs {})",
            r2.stats.io.objects_read,
            r1.stats.io.objects_read
        );
        assert_eq!(r2.stats.plan_conflicts, 0, "single writer never conflicts");
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let (shared, spec) = shared(5000);
        let domain = spec.domain;
        std::thread::scope(|s| {
            // Writers: adaptive queries walking across the domain.
            for t in 0..2 {
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    for i in 0..8 {
                        let off = (t * 50 + i * 40) as f64;
                        let w = Rect::new(100.0 + off, 400.0 + off, 100.0 + off, 400.0 + off)
                            .clamped_into(&domain);
                        let res = shared
                            .evaluate(&w, &[AggregateFunction::Sum(2)], 0.05)
                            .unwrap();
                        assert!(res.met_constraint);
                    }
                });
            }
            // Readers: concurrent metadata estimates.
            for _ in 0..4 {
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    for i in 0..20 {
                        let off = (i * 17 % 500) as f64;
                        let w = Rect::new(off, off + 300.0, off, off + 300.0).clamped_into(&domain);
                        let res = shared.estimate(&w, &[AggregateFunction::Mean(2)]).unwrap();
                        assert!(res.error_bound >= 0.0);
                    }
                });
            }
        });
        shared.with_index(|idx| idx.validate_invariants().unwrap());
    }

    #[test]
    fn batched_shared_evaluate_is_sound() {
        let (shared, _) = shared_with(
            4000,
            EngineConfig {
                adapt_batch: 6,
                ..EngineConfig::paper_evaluation()
            },
        );
        let window = Rect::new(180.0, 700.0, 150.0, 620.0);
        let aggs = [AggregateFunction::Sum(2)];
        let res = shared.evaluate(&window, &aggs, 0.02).unwrap();
        assert!(res.met_constraint);
        let truth = window_truth(shared.file(), &window, &[2]).unwrap();
        // Fully-resolved answers give point CIs whose float merge order can
        // differ from the sequential scan's; compare with endpoint slack
        // (same tolerance the I/O-budget engine test uses).
        let ci = res.cis[0].unwrap();
        let t = truth[0].stats.sum();
        assert!(
            ci.contains(t)
                || (t - ci.lo()).abs() < 1e-9 * (1.0 + ci.lo().abs())
                || (t - ci.hi()).abs() < 1e-9 * (1.0 + ci.hi().abs()),
            "truth {t} escaped CI {ci}"
        );
        shared.with_index(|idx| idx.validate_invariants().unwrap());
    }

    #[test]
    fn with_index_supports_analytics_snapshots() {
        let (shared, _) = shared(1000);
        let leaves = shared.with_index(|idx| idx.leaf_count());
        assert!(leaves >= 36);
    }
}
