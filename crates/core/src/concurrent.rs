//! Concurrent access to one shared adaptive index.
//!
//! An exploration dashboard typically renders several linked views at once
//! (map window, heatmap, summary panel) while the user keeps interacting.
//! [`SharedIndex`] supports that pattern with a `parking_lot` read-write
//! lock:
//!
//! * any number of **readers** run [`SharedIndex::estimate`] concurrently —
//!   metadata-only answers with confidence intervals, zero file I/O;
//! * **adaptive queries** ([`SharedIndex::evaluate`]) take the write lock,
//!   run the partial-adaptation loop, and leave the index better for every
//!   subsequent reader.
//!
//! The raw file itself needs no locking: [`RawFile`] implementations open
//! independent handles per batch and their meters are atomic.

use pai_common::geometry::Rect;
use pai_common::{AggregateFunction, Result};
use pai_index::ValinorIndex;
use pai_storage::raw::RawFile;
use parking_lot::RwLock;

use crate::config::EngineConfig;
use crate::engine::{estimate_readonly, evaluate_on, ApproxResult};

/// A thread-safe wrapper around one index + raw file + engine config.
pub struct SharedIndex<F: RawFile> {
    index: RwLock<ValinorIndex>,
    file: F,
    config: EngineConfig,
}

impl<F: RawFile> SharedIndex<F> {
    pub fn new(index: ValinorIndex, file: F, config: EngineConfig) -> Result<Self> {
        config.validate()?;
        Ok(SharedIndex {
            index: RwLock::new(index),
            file,
            config,
        })
    }

    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    pub fn file(&self) -> &F {
        &self.file
    }

    /// Metadata-only estimate under a read lock: any number of these run in
    /// parallel, never touch the file, never mutate the index.
    pub fn estimate(&self, window: &Rect, aggs: &[AggregateFunction]) -> Result<ApproxResult> {
        let index = self.index.read();
        estimate_readonly(&index, &self.config, window, aggs)
    }

    /// Accuracy-constrained evaluation under the write lock; adapts the
    /// shared index exactly like [`crate::ApproximateEngine::evaluate`].
    pub fn evaluate(
        &self,
        window: &Rect,
        aggs: &[AggregateFunction],
        phi: f64,
    ) -> Result<ApproxResult> {
        let mut index = self.index.write();
        evaluate_on(&mut index, &self.file, &self.config, window, aggs, phi)
    }

    /// Runs a closure against a read-locked snapshot of the index (for
    /// analytics like `pai_query::analytics::heatmap`).
    pub fn with_index<R>(&self, f: impl FnOnce(&ValinorIndex) -> R) -> R {
        f(&self.index.read())
    }

    /// Consumes the wrapper, returning the index.
    pub fn into_index(self) -> ValinorIndex {
        self.index.into_inner()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use pai_index::init::{build, GridSpec, InitConfig};
    use pai_index::MetadataPolicy;
    use pai_storage::{CsvFormat, DatasetSpec, MemFile};
    use std::sync::Arc;

    fn shared(rows: u64) -> (Arc<SharedIndex<MemFile>>, DatasetSpec) {
        let spec = DatasetSpec {
            rows,
            columns: 4,
            seed: 71,
            ..Default::default()
        };
        let file = spec.build_mem(CsvFormat::default()).unwrap();
        let init = InitConfig {
            grid: GridSpec::Fixed { nx: 6, ny: 6 },
            domain: Some(spec.domain),
            metadata: MetadataPolicy::AllNumeric,
        };
        let (index, _) = build(&file, &init).unwrap();
        (
            Arc::new(SharedIndex::new(index, file, EngineConfig::paper_evaluation()).unwrap()),
            spec,
        )
    }

    #[test]
    fn estimates_run_without_io() {
        let (shared, _) = shared(2000);
        shared.file().counters().reset();
        let res = shared
            .estimate(
                &Rect::new(100.0, 500.0, 100.0, 500.0),
                &[AggregateFunction::Mean(2)],
            )
            .unwrap();
        assert_eq!(shared.file().counters().objects_read(), 0);
        assert!(res.error_bound.is_finite());
    }

    #[test]
    fn evaluate_adapts_shared_state_for_readers() {
        let (shared, _) = shared(3000);
        let window = Rect::new(150.0, 600.0, 150.0, 600.0);
        let aggs = [AggregateFunction::Mean(2)];
        let before = shared.estimate(&window, &aggs).unwrap();
        shared.evaluate(&window, &aggs, 0.01).unwrap();
        let after = shared.estimate(&window, &aggs).unwrap();
        assert!(
            after.error_bound <= before.error_bound + 1e-12,
            "adaptation tightens reader estimates: {} -> {}",
            before.error_bound,
            after.error_bound
        );
    }

    #[test]
    fn concurrent_readers_and_writers() {
        let (shared, spec) = shared(5000);
        let domain = spec.domain;
        std::thread::scope(|s| {
            // Writers: adaptive queries walking across the domain.
            for t in 0..2 {
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    for i in 0..8 {
                        let off = (t * 50 + i * 40) as f64;
                        let w = Rect::new(100.0 + off, 400.0 + off, 100.0 + off, 400.0 + off)
                            .clamped_into(&domain);
                        let res = shared
                            .evaluate(&w, &[AggregateFunction::Sum(2)], 0.05)
                            .unwrap();
                        assert!(res.met_constraint);
                    }
                });
            }
            // Readers: concurrent metadata estimates.
            for _ in 0..4 {
                let shared = Arc::clone(&shared);
                s.spawn(move || {
                    for i in 0..20 {
                        let off = (i * 17 % 500) as f64;
                        let w = Rect::new(off, off + 300.0, off, off + 300.0).clamped_into(&domain);
                        let res = shared.estimate(&w, &[AggregateFunction::Mean(2)]).unwrap();
                        assert!(res.error_bound >= 0.0);
                    }
                });
            }
        });
        shared.with_index(|idx| idx.validate_invariants().unwrap());
    }

    #[test]
    fn with_index_supports_analytics_snapshots() {
        let (shared, _) = shared(1000);
        let leaves = shared.with_index(|idx| idx.leaf_count());
        assert!(leaves >= 36);
    }
}
