//! Partial adaptive indexing for approximate query answering — the paper's
//! contribution (§3).
//!
//! Given a window-aggregate query and a user accuracy constraint `φ`, the
//! [`ApproximateEngine`] answers from the tile index's aggregate metadata,
//! building a **deterministic confidence interval** that is guaranteed to
//! contain the exact answer, and **partially adapts** the index — it
//! processes (reads + splits + enriches) only as many partially-contained
//! tiles as needed to shrink the upper error bound below `φ`. Tiles are
//! chosen by a pluggable [`SelectionPolicy`]; the paper's policy is the
//! score `s(t) = α·w(t) + (1−α)/count(t∩Q)` with both terms normalized.
//!
//! Module map:
//! * [`config`] — engine knobs (α, estimator, normalization, eager
//!   refinement, NULL assumption);
//! * [`state`] — the per-query bookkeeping: exact accumulators plus the
//!   still-bounded candidate tiles;
//! * [`ci`] — confidence-interval assembly and approximate-value estimation
//!   for every supported aggregate;
//! * [`bound`] — the relative upper error bound;
//! * [`policy`] — tile-selection policies (paper's score greedy and the
//!   ablation baselines);
//! * [`engine`] — the partial-adaptation loop (accuracy-constrained,
//!   I/O-budgeted, and read-only modes);
//! * [`concurrent`] — a shared, lock-protected index for multi-view UIs,
//!   including the streaming-ingest entry point;
//! * [`compactor`] — the background thread re-clustering streamed delta
//!   blocks into Z-order;
//! * [`synopsis`] — zero-I/O answers composed from per-block synopses
//!   (`RawFile::block_synopses`), plus the pre-evaluation I/O predictor;
//! * [`verify`] — test/bench helpers checking results against ground truth.

pub mod bound;
pub mod ci;
pub mod compactor;
pub mod concurrent;
pub mod config;
pub mod engine;
pub mod policy;
pub mod state;
pub mod synopsis;
pub mod verify;

pub use bound::{relative_error, upper_error_bound, NormalizationMode};
pub use ci::AggregateEstimate;
pub use compactor::{
    compact_now, spawn_compactor, CompactorConfig, CompactorHandle, CompactorStats,
};
pub use concurrent::SharedIndex;
pub use config::{EagerRefinement, EngineConfig, ValueEstimator};
pub use engine::{estimate_readonly, evaluate_on, ApproxResult, ApproximateEngine};
pub use policy::SelectionPolicy;
pub use state::{Candidate, CandidateKind, QueryState};
pub use synopsis::{predict_query_io, seed_missing_global_bounds, IoPrediction};
