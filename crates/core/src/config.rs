//! Engine configuration.

use pai_common::{PaiError, Result};
use pai_index::AdaptConfig;
use pai_storage::CacheConfig;

use crate::bound::NormalizationMode;
use crate::policy::SelectionPolicy;

/// How a partially-contained tile's contribution is point-estimated inside
/// its confidence interval.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ValueEstimator {
    /// Midpoint of the tile interval — the paper's estimator ("the tile's
    /// mean value derived from its min and max").
    #[default]
    Midpoint,
    /// Lower endpoint (pessimistic for sums of positive attributes).
    Lower,
    /// Upper endpoint (optimistic).
    Upper,
}

impl ValueEstimator {
    /// Picks the estimate from an interval.
    #[inline]
    pub fn pick(&self, iv: &pai_common::Interval) -> f64 {
        match self {
            ValueEstimator::Midpoint => iv.midpoint(),
            ValueEstimator::Lower => iv.lo(),
            ValueEstimator::Upper => iv.hi(),
        }
    }
}

/// Extra adaptation after the accuracy constraint is met.
///
/// The paper's future work proposes "enabling more index adaptation even if
/// the accuracy constraints have been satisfied" to avoid the late-phase
/// crossover where the exact method overtakes the approximate ones. This
/// knob implements that: after meeting `φ`, keep processing up to
/// `extra_tiles` more candidates per query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EagerRefinement {
    /// Stop as soon as the constraint is met (the paper's evaluated method).
    #[default]
    Off,
    /// Process up to this many additional tiles after meeting `φ`.
    ExtraTiles(usize),
}

/// Full configuration of the approximate engine.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Shared adaptation machinery (split/read/enrich policies, thresholds).
    pub adapt: AdaptConfig,
    /// Tile-selection policy (paper: score greedy with α = 1).
    pub policy: SelectionPolicy,
    /// Error-bound normalization (paper leaves the denominator open).
    pub normalization: NormalizationMode,
    /// Point estimator for bounded tiles.
    pub estimator: ValueEstimator,
    /// Assume attribute values contain no NULLs (the paper's setting).
    /// Disable for conservative interval handling on dirty data.
    pub assume_non_null: bool,
    /// Post-constraint adaptation (paper future work; default off).
    pub eager: EagerRefinement,
    /// Candidate tiles planned and fetched together per adaptation
    /// iteration. `1` (the default) reproduces the sequential
    /// tile-at-a-time loop byte-for-byte; larger batches coalesce many
    /// tiles' locators into one `read_rows` call (fewer syscalls,
    /// cross-tile run coalescing on binary backends) while the apply stage
    /// still re-checks the accuracy stop rule after every tile, so answers
    /// and confidence intervals are identical to the sequential loop.
    pub adapt_batch: usize,
    /// Threads the batched fetch may shard a large locator batch across
    /// (`std::thread::scope`). `1` (the default) keeps the one-call
    /// guarantee that the equivalence tests gate on; raise it to trade
    /// call count for wall-clock on high-latency backends.
    pub fetch_parallelism: usize,
    /// Overlap the fetch and apply stages: with `> 1`, a batch's fetch
    /// units (one coalesced call per distinct attribute set) are issued by
    /// a producer thread and streamed into the apply stage as they
    /// complete, so decode/apply of early units runs while later fetches
    /// are still in flight. Fetch units are issued in exactly the order the
    /// sequential path issues them and plans still apply in pick order with
    /// the stop rule re-checked per tile, so answers, CIs, trajectories,
    /// and every logical meter are identical at any worker count. `1` (the
    /// default) is the strictly sequential fetch-then-apply path.
    pub fetch_workers: usize,
    /// Tiered block cache for the raw file's remote transport (memory +
    /// disk-spill budgets, see `pai_storage::CacheConfig`). `None` (the
    /// default) is uncached. The engine itself takes an already-built
    /// file, so harnesses consume this when constructing the backend
    /// (wrapping it in `pai_storage::CachedFile`); it lives here so one
    /// config object describes a full evaluation setup. Transport-only:
    /// answers, CIs, trajectories, and logical meters are unaffected.
    pub cache: Option<CacheConfig>,
    /// Synopsis-first evaluation: before any fetch is planned, try to
    /// answer the query from the backend's per-block synopses
    /// (`RawFile::block_synopses`). When the synopsis confidence interval
    /// already meets φ the query returns with **zero data I/O**
    /// (`fetch_wall_us == 0`, `synopsis_hits` metered); otherwise the
    /// synopsis pass seeds global attribute bounds for a
    /// `MetadataPolicy::None` cold start and evaluation proceeds
    /// unchanged. `false` (the default) preserves the historical
    /// data-first path byte-for-byte.
    pub synopsis: bool,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            adapt: AdaptConfig::default(),
            policy: SelectionPolicy::default(),
            normalization: NormalizationMode::default(),
            estimator: ValueEstimator::default(),
            assume_non_null: true,
            eager: EagerRefinement::Off,
            adapt_batch: 1,
            fetch_parallelism: 1,
            fetch_workers: 1,
            cache: None,
            synopsis: false,
        }
    }
}

impl EngineConfig {
    /// The configuration used in the paper's evaluation: α = 1 (score is
    /// the tile-confidence-interval width only), midpoint estimates,
    /// window-only reads, query-aligned splits.
    pub fn paper_evaluation() -> Self {
        EngineConfig {
            policy: SelectionPolicy::ScoreGreedy { alpha: 1.0 },
            ..Default::default()
        }
    }

    /// This config with synopsis-first evaluation switched on.
    pub fn with_synopsis(mut self) -> Self {
        self.synopsis = true;
        self
    }

    /// This config with a tiered block cache of the given budgets.
    /// `spill_dir = None` spills under the system temp directory.
    pub fn with_cache(
        mut self,
        mem_bytes: u64,
        disk_bytes: u64,
        spill_dir: Option<std::path::PathBuf>,
    ) -> Self {
        let mut cfg = CacheConfig::new(mem_bytes, disk_bytes);
        cfg.spill_dir = spill_dir;
        self.cache = Some(cfg);
        self
    }

    /// Validates every nested knob.
    pub fn validate(&self) -> Result<()> {
        self.adapt.validate()?;
        self.policy.validate()?;
        if let EagerRefinement::ExtraTiles(0) = self.eager {
            return Err(PaiError::config(
                "EagerRefinement::ExtraTiles(0) is EagerRefinement::Off; pick one",
            ));
        }
        if self.adapt_batch == 0 {
            return Err(PaiError::config(
                "adapt_batch must be >= 1 (1 = sequential tile-at-a-time)",
            ));
        }
        if self.fetch_parallelism == 0 {
            return Err(PaiError::config(
                "fetch_parallelism must be >= 1 (1 = single batched call)",
            ));
        }
        if self.fetch_workers == 0 {
            return Err(PaiError::config(
                "fetch_workers must be >= 1 (1 = sequential fetch-then-apply)",
            ));
        }
        if let Some(cache) = &self.cache {
            if cache.mem_bytes == 0 {
                return Err(PaiError::config(
                    "cache.mem_bytes must be > 0 (the disk tier only holds \
                     memory-tier victims); omit the cache to disable it",
                ));
            }
        }
        Ok(())
    }
}

/// Validates a user accuracy constraint φ (a relative error, so a small
/// non-negative number; φ = 0 demands exact answering).
pub fn validate_phi(phi: f64) -> Result<()> {
    if !phi.is_finite() || phi < 0.0 {
        return Err(PaiError::config(format!(
            "accuracy constraint must be a finite value >= 0, got {phi}"
        )));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use pai_common::Interval;

    #[test]
    fn estimator_picks() {
        let iv = Interval::new(2.0, 6.0);
        assert_eq!(ValueEstimator::Midpoint.pick(&iv), 4.0);
        assert_eq!(ValueEstimator::Lower.pick(&iv), 2.0);
        assert_eq!(ValueEstimator::Upper.pick(&iv), 6.0);
    }

    #[test]
    fn default_config_valid() {
        assert!(EngineConfig::default().validate().is_ok());
        assert!(EngineConfig::paper_evaluation().validate().is_ok());
    }

    #[test]
    fn zero_batch_and_parallelism_rejected() {
        let cfg = EngineConfig {
            adapt_batch: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = EngineConfig {
            fetch_parallelism: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = EngineConfig {
            fetch_workers: 0,
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
        let cfg = EngineConfig {
            adapt_batch: 8,
            fetch_parallelism: 4,
            fetch_workers: 8,
            ..Default::default()
        };
        assert!(cfg.validate().is_ok());
    }

    #[test]
    fn cache_config_validated() {
        let cfg = EngineConfig::default().with_cache(1 << 20, 0, None);
        assert!(cfg.validate().is_ok());
        assert_eq!(cfg.cache.as_ref().unwrap().mem_bytes, 1 << 20);
        let cfg = EngineConfig::default().with_cache(0, 1 << 20, None);
        assert!(cfg.validate().is_err(), "memory tier is mandatory");
        let dir = std::path::PathBuf::from("/tmp/spill");
        let cfg = EngineConfig::default().with_cache(1024, 2048, Some(dir.clone()));
        assert_eq!(cfg.cache.unwrap().spill_dir, Some(dir));
    }

    #[test]
    fn zero_eager_tiles_rejected() {
        let cfg = EngineConfig {
            eager: EagerRefinement::ExtraTiles(0),
            ..Default::default()
        };
        assert!(cfg.validate().is_err());
    }

    #[test]
    fn phi_validation() {
        assert!(validate_phi(0.0).is_ok());
        assert!(validate_phi(0.05).is_ok());
        assert!(validate_phi(-0.1).is_err());
        assert!(validate_phi(f64::NAN).is_err());
        assert!(validate_phi(f64::INFINITY).is_err());
    }
}
