//! Background Z-order compaction for streaming sessions.
//!
//! Streaming ingest ([`SharedIndex::ingest`]) lands rows in append-order
//! delta blocks — cheap to write, terrible to skip: a delta block's zone
//! map spans whatever the stream happened to interleave, so window queries
//! decode almost every delta block they overlap. The compactor is the
//! repair loop: a background thread that watches for cold runs of sealed
//! delta blocks and asks the backend to re-cluster them into Z-order
//! ([`RawFile::compact_once`]), restoring the block-skipping rates a
//! statically Z-ordered file would have had.
//!
//! Division of labour:
//!
//! * the **backend** owns the rewrite — snapshotting the run, sorting by
//!   Morton key, swapping the new layout in atomically under a bumped
//!   generation tag, and invalidating any caches that might still hold
//!   pre-rewrite spans. Row *identities* (locators) never change, so the
//!   index needs no remap and queries racing the swap stay correct;
//! * the **compactor thread** owns only the policy: when to look (poll
//!   cadence) and what counts as a cold run worth rewriting
//!   ([`CompactorConfig::min_run`] sealed blocks). It holds no index lock —
//!   it reads the domain once at startup and then talks purely to the
//!   [`RawFile`] seam, so readers and ingest never wait behind a rewrite.
//!
//! Backends without an append path (everything except
//! [`pai_storage::AppendableFile`]) answer `Ok(None)` from the default
//! `compact_once`, so pointing a compactor at a sealed file is a harmless
//! no-op loop — useful for wiring it unconditionally into a server.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use pai_common::Result;
use pai_storage::raw::{CompactionReport, RawFile};

use crate::concurrent::SharedIndex;

/// Policy knobs for the background compactor thread.
#[derive(Clone, Copy, Debug)]
pub struct CompactorConfig {
    /// Minimum sealed delta blocks that make a run worth rewriting. Below
    /// this the pass is skipped: tiny rewrites churn the cache for little
    /// skipping gain.
    pub min_run: usize,
    /// Poll cadence between passes when no work was found.
    pub interval: Duration,
}

impl Default for CompactorConfig {
    fn default() -> Self {
        CompactorConfig {
            min_run: 2,
            interval: Duration::from_millis(25),
        }
    }
}

/// Cumulative work a compactor thread did over its lifetime, returned by
/// [`CompactorHandle::stop`].
#[derive(Clone, Copy, Debug, Default)]
pub struct CompactorStats {
    /// Times the thread looked for work.
    pub passes: u64,
    /// Passes that installed a rewrite.
    pub compactions: u64,
    /// Delta blocks re-clustered across all compactions.
    pub blocks_rewritten: u64,
    /// Passes that failed; the thread logs nothing and keeps going (a
    /// transient backend error must not kill the repair loop).
    pub errors: u64,
}

/// Owner handle for a running compactor thread. Dropping it stops the
/// thread; [`CompactorHandle::stop`] does the same and hands back the
/// lifetime stats.
pub struct CompactorHandle {
    stop: Arc<AtomicBool>,
    join: Option<JoinHandle<CompactorStats>>,
}

impl CompactorHandle {
    /// Signals the thread, joins it, and returns what it did.
    pub fn stop(mut self) -> CompactorStats {
        self.stop_inner()
    }

    fn stop_inner(&mut self) -> CompactorStats {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.join.take() {
            handle.thread().unpark();
            return handle.join().unwrap_or_default();
        }
        CompactorStats::default()
    }
}

impl Drop for CompactorHandle {
    fn drop(&mut self) {
        self.stop_inner();
    }
}

/// One synchronous compaction pass against `shared`'s file — the policy of
/// a single background tick without the thread. Test suites and benches
/// use this to compact at a deterministic point in a scripted session.
pub fn compact_now<F: RawFile>(
    shared: &SharedIndex<F>,
    min_run: usize,
) -> Result<Option<CompactionReport>> {
    let domain = shared.with_index(|index| *index.domain());
    shared.file().compact_once(&domain, min_run)
}

/// Spawns the background compactor thread for `shared`. The thread polls
/// every [`CompactorConfig::interval`], rewrites whenever at least
/// [`CompactorConfig::min_run`] sealed delta blocks have accumulated, and
/// immediately re-checks after a successful rewrite in case the stream
/// outran it. Stop it (or drop the handle) before tearing the session down.
pub fn spawn_compactor<F>(shared: Arc<SharedIndex<F>>, config: CompactorConfig) -> CompactorHandle
where
    F: RawFile + Send + Sync + 'static,
{
    let stop = Arc::new(AtomicBool::new(false));
    let flag = Arc::clone(&stop);
    let join = std::thread::Builder::new()
        .name("pai-compactor".into())
        .spawn(move || {
            // The domain is fixed at init (streaming never grows it), so
            // one read outside the loop keeps the thread lock-free.
            let domain = shared.with_index(|index| *index.domain());
            let mut stats = CompactorStats::default();
            while !flag.load(Ordering::Acquire) {
                stats.passes += 1;
                match shared.file().compact_once(&domain, config.min_run) {
                    Ok(Some(report)) => {
                        stats.compactions += 1;
                        stats.blocks_rewritten += report.blocks_rewritten;
                        continue;
                    }
                    Ok(None) => {}
                    Err(_) => stats.errors += 1,
                }
                std::thread::park_timeout(config.interval);
            }
            stats
        })
        .expect("spawn compactor thread");
    CompactorHandle {
        stop,
        join: Some(join),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::EngineConfig;
    use pai_common::geometry::Rect;
    use pai_common::AggregateFunction;
    use pai_index::init::{build, GridSpec, InitConfig};
    use pai_index::MetadataPolicy;
    use pai_storage::ground_truth::window_truth;
    use pai_storage::raw::SynopsisSpec;
    use pai_storage::{AppendableFile, CsvFormat, DatasetSpec, MemFile};

    fn streaming_shared(rows: u64) -> (Arc<SharedIndex<AppendableFile<MemFile>>>, DatasetSpec) {
        let spec = DatasetSpec {
            rows,
            columns: 4,
            seed: 71,
            ..Default::default()
        };
        let base = spec.build_mem(CsvFormat::default()).unwrap();
        let file = AppendableFile::with_layout(base, rows, 32, SynopsisSpec::default()).unwrap();
        let init = InitConfig {
            grid: GridSpec::Fixed { nx: 6, ny: 6 },
            domain: Some(spec.domain),
            metadata: MetadataPolicy::AllNumeric,
        };
        let (index, _) = build(&file, &init).unwrap();
        let shared =
            Arc::new(SharedIndex::new(index, file, EngineConfig::paper_evaluation()).unwrap());
        (shared, spec)
    }

    fn stream_rows(spec: &DatasetSpec, n: usize, salt: u64) -> Vec<Vec<f64>> {
        let d = spec.domain;
        (0..n)
            .map(|i| {
                let t = (i as u64 * 37 + salt * 13) % 1000;
                let fx = (t as f64 + 0.5) / 1000.0;
                let fy = ((t as f64 * 7.0) % 1000.0 + 0.5) / 1000.0;
                vec![
                    d.x_min + fx * (d.x_max - d.x_min),
                    d.y_min + fy * (d.y_max - d.y_min),
                    100.0 + i as f64,
                    -3.0 * i as f64,
                ]
            })
            .collect()
    }

    #[test]
    fn ingest_extends_file_and_index_atomically() {
        let (shared, spec) = streaming_shared(1200);
        let total0 = shared.with_index(|i| i.total_objects());
        let batch = stream_rows(&spec, 80, 1);
        let receipt = shared.ingest(&batch).unwrap();
        assert_eq!(receipt.locators.len(), 80);
        assert_eq!(receipt.start_row, 1200);
        assert_eq!(
            shared.with_index(|i| i.total_objects()),
            total0 + 80,
            "every appended row is indexed"
        );

        // phi = 0 answers over the whole domain see base + delta exactly.
        let res = shared
            .evaluate(&spec.domain, &[AggregateFunction::Count], 0.0)
            .unwrap();
        assert_eq!(res.values[0].as_f64().unwrap(), 1280.0);
        let truth = window_truth(shared.file(), &spec.domain, &[2]).unwrap();
        assert_eq!(truth[0].stats.count(), 1280);
        shared.with_index(|idx| idx.validate_invariants().unwrap());
    }

    #[test]
    fn bad_batches_are_rejected_before_any_mutation() {
        let (shared, spec) = streaming_shared(600);
        let total0 = shared.with_index(|i| i.total_objects());
        let d = spec.domain;

        // One out-of-domain point poisons the whole batch.
        let mut batch = stream_rows(&spec, 5, 2);
        batch[3] = vec![d.x_max + 1000.0, d.y_min, 0.0, 0.0];
        assert!(shared.ingest(&batch).is_err());

        // So does a row with the wrong arity.
        let mut batch = stream_rows(&spec, 5, 3);
        batch[2] = vec![d.x_min, d.y_min];
        assert!(shared.ingest(&batch).is_err());

        assert_eq!(shared.with_index(|i| i.total_objects()), total0);
        assert_eq!(shared.file().delta_rows(), 0, "nothing reached the file");
    }

    #[test]
    fn compact_now_reclusters_without_changing_answers() {
        let (shared, spec) = streaming_shared(900);
        for salt in 0..4 {
            shared.ingest(&stream_rows(&spec, 64, salt)).unwrap();
        }
        assert!(shared.file().sealed_blocks() >= 4);
        let window = Rect::new(
            spec.domain.x_min,
            spec.domain.x_min + (spec.domain.x_max - spec.domain.x_min) * 0.4,
            spec.domain.y_min,
            spec.domain.y_min + (spec.domain.y_max - spec.domain.y_min) * 0.4,
        );
        let aggs = [AggregateFunction::Count, AggregateFunction::Sum(2)];
        let before = shared.evaluate(&window, &aggs, 0.0).unwrap();

        let report = compact_now(&shared, 2).unwrap().expect("had a cold run");
        assert!(report.blocks_rewritten >= 4);
        assert!(report.generation > 0);
        assert!(
            compact_now(&shared, 2).unwrap().is_none(),
            "second pass finds nothing to do"
        );

        let after = shared.evaluate(&window, &aggs, 0.0).unwrap();
        assert_eq!(before.values[0].as_f64(), after.values[0].as_f64());
        assert_eq!(before.values[1].as_f64(), after.values[1].as_f64());
        shared.with_index(|idx| idx.validate_invariants().unwrap());
    }

    #[test]
    fn background_compactor_keeps_up_with_a_stream() {
        let (shared, spec) = streaming_shared(800);
        let handle = spawn_compactor(
            Arc::clone(&shared),
            CompactorConfig {
                min_run: 2,
                interval: Duration::from_millis(1),
            },
        );
        for salt in 0..8 {
            shared.ingest(&stream_rows(&spec, 48, salt)).unwrap();
            // Interleave queries with the stream and the compactor.
            let res = shared
                .evaluate(&spec.domain, &[AggregateFunction::Count], 0.0)
                .unwrap();
            assert_eq!(
                res.values[0].as_f64().unwrap(),
                800.0 + 48.0 * (salt as f64 + 1.0)
            );
        }
        // Give the thread a chance to see the tail, then stop.
        std::thread::sleep(Duration::from_millis(20));
        let stats = handle.stop();
        assert!(stats.passes > 0);
        assert!(
            stats.compactions >= 1,
            "8 batches × 48 rows seal 12 blocks of 32; the thread must have rewritten"
        );
        assert_eq!(stats.errors, 0);
        assert!(shared.file().generation() >= 1);

        let truth = window_truth(shared.file(), &spec.domain, &[2]).unwrap();
        assert_eq!(truth[0].stats.count(), 800 + 8 * 48);
        shared.with_index(|idx| idx.validate_invariants().unwrap());
    }

    #[test]
    fn compactor_on_a_sealed_backend_is_a_harmless_no_op() {
        let spec = DatasetSpec {
            rows: 300,
            columns: 4,
            seed: 9,
            ..Default::default()
        };
        let file = spec.build_mem(CsvFormat::default()).unwrap();
        let init = InitConfig {
            grid: GridSpec::Fixed { nx: 4, ny: 4 },
            domain: Some(spec.domain),
            metadata: MetadataPolicy::AllNumeric,
        };
        let (index, _) = build(&file, &init).unwrap();
        let shared =
            Arc::new(SharedIndex::new(index, file, EngineConfig::paper_evaluation()).unwrap());
        assert!(compact_now(&shared, 1).unwrap().is_none());
        let handle = spawn_compactor(Arc::clone(&shared), CompactorConfig::default());
        std::thread::sleep(Duration::from_millis(5));
        let stats = handle.stop();
        assert_eq!(stats.compactions, 0);
        assert_eq!(stats.errors, 0);
    }
}
