//! Per-query bookkeeping for the partial-adaptation loop.
//!
//! A query's answer decomposes into an **exact part** (fully-contained tiles
//! with exact metadata, plus every tile processed so far) and a set of
//! **candidates** — tiles whose contribution is still only bounded. The
//! [`QueryState`] holds both; each processing step moves one candidate into
//! the exact part, monotonically tightening every confidence interval.

use pai_common::geometry::Rect;
use pai_common::{AttrId, Interval, PaiError, Result, RunningStats};
use pai_index::{AttrMeta, Classification, TileId, ValinorIndex};

/// What kind of work "processing" this candidate means.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateKind {
    /// Partially-contained tile: process = read selected objects + split
    /// (the paper's `process(t)`).
    Partial,
    /// Fully-contained tile that only has bounded metadata for some
    /// requested attribute (possible after window-only splits or with
    /// metadata-free initialization): process = enrichment read.
    ///
    /// The paper assumes full tiles always carry exact metadata; this
    /// generalization keeps the engine sound when they do not.
    FullBounded,
}

/// A tile whose contribution to the current query is still an interval.
#[derive(Debug, Clone)]
pub struct Candidate {
    pub tile: TileId,
    /// `count(t∩Q)` — exact, from indexed axis values.
    pub selected: u64,
    pub kind: CandidateKind,
    /// Per-query-attribute metadata view (tile metadata, falling back to
    /// global column bounds). `None` means no bounds exist at all for that
    /// attribute, making the query CI unbounded until this tile is
    /// processed.
    pub meta: Vec<Option<AttrMeta>>,
}

impl Candidate {
    /// Bounds on a single value of query-attribute `i` in this tile.
    pub fn value_bounds(&self, i: usize) -> Option<Interval> {
        self.meta[i].as_ref().and_then(|m| m.value_bounds())
    }

    /// Bounds on the sum of query-attribute `i` over the selected objects.
    pub fn sum_bounds(&self, i: usize, assume_non_null: bool) -> Option<Interval> {
        self.meta[i]
            .as_ref()
            .and_then(|m| m.sum_bounds(self.selected, assume_non_null))
    }

    /// Whether attribute `i` certainly has a non-NULL value in every object
    /// (needed for min/max upper bounds under conservative NULL handling).
    pub fn certainly_non_null(&self, i: usize) -> bool {
        self.meta[i]
            .as_ref()
            .is_some_and(|m| m.certainly_non_null())
    }

    /// True when any requested attribute has no bounds at all.
    pub fn is_unbounded(&self) -> bool {
        self.meta
            .iter()
            .any(|m| m.as_ref().and_then(|meta| meta.value_bounds()).is_none())
    }
}

/// The evolving state of one approximate query evaluation.
#[derive(Debug, Clone)]
pub struct QueryState {
    /// Distinct non-axis attributes the query aggregates over.
    pub attrs: Vec<AttrId>,
    /// Exact number of selected objects (all tiles).
    pub selected_total: u64,
    /// Exact per-attribute stats accumulated so far (same order as `attrs`).
    pub exact: Vec<RunningStats>,
    /// Tiles whose contribution is still bounded.
    pub candidates: Vec<Candidate>,
    /// Fully-contained tiles answered directly from exact metadata.
    pub full_exact_tiles: usize,
}

impl QueryState {
    /// Builds the initial state from a classification: exact metadata is
    /// folded immediately; everything else becomes a candidate.
    pub fn from_classification(
        index: &ValinorIndex,
        classification: &Classification,
        attrs: &[AttrId],
    ) -> Result<QueryState> {
        Self::from_classification_resolved(index, classification, attrs, &Default::default())
    }

    /// Like [`Self::from_classification`], but partial tiles present in
    /// `resolved` fold their (previously computed) exact in-window stats
    /// into the exact part instead of becoming candidates again.
    ///
    /// This is the re-planning primitive of the concurrent pipeline
    /// (`crate::concurrent::SharedIndex`): an evaluation that rebuilds its
    /// state from a fresh index snapshot each round must not re-read tiles
    /// it already processed — values in the raw file are immutable, so the
    /// remembered stats stay exact forever.
    pub(crate) fn from_classification_resolved(
        index: &ValinorIndex,
        classification: &Classification,
        attrs: &[AttrId],
        resolved: &std::collections::HashMap<TileId, Vec<RunningStats>>,
    ) -> Result<QueryState> {
        let mut state = QueryState {
            attrs: attrs.to_vec(),
            selected_total: classification.selected_total,
            exact: vec![RunningStats::new(); attrs.len()],
            candidates: Vec::new(),
            full_exact_tiles: 0,
        };

        for &tid in &classification.full {
            let tile = index.tile(tid);
            let all_exact = attrs.iter().all(|&a| tile.meta.has_exact(a));
            if all_exact {
                for (i, &a) in attrs.iter().enumerate() {
                    let stats = tile
                        .meta
                        .get(a)
                        .and_then(AttrMeta::exact_stats)
                        .ok_or_else(|| PaiError::internal("exact metadata vanished"))?;
                    state.exact[i].merge(stats);
                }
                state.full_exact_tiles += 1;
            } else {
                state.candidates.push(Candidate {
                    tile: tid,
                    selected: tile.object_count(),
                    kind: CandidateKind::FullBounded,
                    meta: Self::meta_view(index, tid, attrs),
                });
            }
        }

        for pt in &classification.partial {
            if let Some(stats) = resolved.get(&pt.tile) {
                debug_assert_eq!(stats.len(), attrs.len());
                for (acc, s) in state.exact.iter_mut().zip(stats) {
                    acc.merge(s);
                }
                continue;
            }
            state.candidates.push(Candidate {
                tile: pt.tile,
                selected: pt.selected,
                kind: CandidateKind::Partial,
                meta: Self::meta_view(index, pt.tile, attrs),
            });
        }
        Ok(state)
    }

    /// Metadata view per query attribute: the tile's own metadata when
    /// present, else the global column bounds demoted to `Bounded`.
    fn meta_view(index: &ValinorIndex, tile: TileId, attrs: &[AttrId]) -> Vec<Option<AttrMeta>> {
        attrs
            .iter()
            .map(|&a| {
                index
                    .tile(tile)
                    .meta
                    .get(a)
                    .cloned()
                    .or_else(|| index.global_bounds(a).map(AttrMeta::Bounded))
            })
            .collect()
    }

    /// Moves candidate `i` into the exact part with its freshly computed
    /// per-attribute stats (swap-removes; order of candidates is not
    /// meaningful).
    pub fn resolve(&mut self, i: usize, stats: &[RunningStats]) {
        debug_assert_eq!(stats.len(), self.attrs.len());
        for (acc, s) in self.exact.iter_mut().zip(stats) {
            acc.merge(s);
        }
        self.candidates.swap_remove(i);
    }

    /// True once every contribution is exact.
    pub fn fully_resolved(&self) -> bool {
        self.candidates.is_empty()
    }

    /// Position of attribute `a` in the query's attribute list.
    pub fn attr_pos(&self, a: AttrId) -> usize {
        self.attrs
            .iter()
            .position(|&x| x == a)
            .expect("aggregate attr was registered in query_attrs")
    }

    /// Test helper: a synthetic state with no index behind it.
    #[doc(hidden)]
    pub fn synthetic(
        attrs: Vec<AttrId>,
        selected_total: u64,
        exact: Vec<RunningStats>,
        candidates: Vec<Candidate>,
    ) -> QueryState {
        QueryState {
            attrs,
            selected_total,
            exact,
            candidates,
            full_exact_tiles: 0,
        }
    }
}

/// Width of a candidate's sum-contribution interval for attribute `i` —
/// the `w(t)` of the tile-selection score (the paper defines the tile
/// confidence interval for sums as `[count·min, count·max]`).
pub fn candidate_sum_width(c: &Candidate, i: usize, assume_non_null: bool) -> f64 {
    c.sum_bounds(i, assume_non_null)
        .map_or(f64::INFINITY, |iv| iv.width())
}

/// Convenience: builds the candidate list's classification against a window
/// and the state in one call (used by tests and the engine).
pub fn classify_and_build(
    index: &ValinorIndex,
    window: &Rect,
    attrs: &[AttrId],
) -> Result<(Classification, QueryState)> {
    let classification = index.classify(window);
    let state = QueryState::from_classification(index, &classification, attrs)?;
    Ok((classification, state))
}

#[cfg(test)]
mod tests {
    use super::*;
    use pai_index::{build_test_index, TestIndexSpec};

    fn test_state(metadata: bool) -> (ValinorIndex, QueryState) {
        let spec = TestIndexSpec {
            domain: Rect::new(0.0, 30.0, 0.0, 30.0),
            grid: (3, 3),
            // (x, y, value) triples; col2 is the value attribute.
            objects: vec![
                (5.0, 5.0, 10.0),
                (11.0, 5.0, 20.0),
                (11.0, 8.0, 30.0),
                (25.0, 25.0, 40.0),
            ],
            with_metadata: metadata,
        };
        let index = build_test_index(&spec);
        let window = Rect::new(0.0, 12.0, 0.0, 12.0);
        let (_, state) = classify_and_build(&index, &window, &[2]).unwrap();
        (index, state)
    }

    #[test]
    fn builds_exact_and_candidates() {
        let (_, state) = test_state(true);
        // Cell [0,10)^2 fully contained with exact meta -> exact part.
        assert_eq!(state.full_exact_tiles, 1);
        assert_eq!(state.exact[0].sum(), 10.0);
        // Cell [10,20)x[0,10) partially contained with 2 selected objects.
        assert_eq!(state.candidates.len(), 1);
        let c = &state.candidates[0];
        assert_eq!(c.kind, CandidateKind::Partial);
        assert_eq!(c.selected, 2);
        assert_eq!(c.value_bounds(0), Some(Interval::new(20.0, 30.0)));
        assert_eq!(
            c.sum_bounds(0, true),
            Some(Interval::new(40.0, 60.0)),
            "2 selected x [20,30]"
        );
        assert!(!c.is_unbounded());
        assert_eq!(state.selected_total, 3);
    }

    #[test]
    fn no_metadata_falls_back_to_global_bounds() {
        let (index, state) = test_state(false);
        // build_test_index folds global bounds even without tile metadata.
        assert!(index.global_bounds(2).is_some());
        let c = &state.candidates[0];
        assert_eq!(c.value_bounds(0), Some(Interval::new(10.0, 40.0)));
    }

    #[test]
    fn resolve_moves_candidate_to_exact() {
        let (_, mut state) = test_state(true);
        let stats = vec![RunningStats::from_values(&[20.0, 30.0])];
        state.resolve(0, &stats);
        assert!(state.fully_resolved());
        assert_eq!(state.exact[0].sum(), 60.0);
        assert_eq!(state.exact[0].count(), 3);
    }

    #[test]
    fn candidate_sum_width_metric() {
        let (_, state) = test_state(true);
        let w = candidate_sum_width(&state.candidates[0], 0, true);
        assert!((w - 20.0).abs() < 1e-12, "2 x (30-20)");
        let unbounded = Candidate {
            tile: TileId(0),
            selected: 1,
            kind: CandidateKind::Partial,
            meta: vec![None],
        };
        assert!(candidate_sum_width(&unbounded, 0, true).is_infinite());
        assert!(unbounded.is_unbounded());
    }

    #[test]
    fn attr_pos_lookup() {
        let state = QueryState::synthetic(vec![4, 2], 0, vec![], vec![]);
        assert_eq!(state.attr_pos(4), 0);
        assert_eq!(state.attr_pos(2), 1);
    }
}
