//! Quickstart: generate a raw CSV, build the crude index, and compare
//! exact vs. approximate query answering on a small exploration burst.
//!
//! Run with:
//! ```text
//! cargo run --release --example quickstart
//! ```

use partial_adaptive_indexing::prelude::*;

fn main() -> Result<()> {
    // --- 1. A raw data file -------------------------------------------------
    // 100 K objects, 10 numeric columns (the paper's synthetic layout),
    // Gaussian clusters over a uniform background ("dense areas").
    let spec = DatasetSpec {
        rows: 100_000,
        columns: 10,
        seed: 7,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join("pai_quickstart");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("quickstart.csv");
    println!("generating {} rows into {} ...", spec.rows, path.display());
    let file = spec.write_csv(&path, CsvFormat::default())?;
    println!(
        "raw file size: {:.1} MiB",
        file.size_bytes() as f64 / (1024.0 * 1024.0)
    );

    // --- 2. Crude initial index (single scan) -------------------------------
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: 16, ny: 16 },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    let (index, report) = build(&file, &init)?;
    println!(
        "initialized {}x{} grid over {} objects in {:.1?}",
        report.grid_nx, report.grid_ny, report.rows, report.elapsed
    );

    // --- 3. Approximate query answering with a 5 % accuracy constraint ------
    let mut engine = ApproximateEngine::new(index, &file, EngineConfig::paper_evaluation())?;
    let window = Rect::new(250.0, 450.0, 250.0, 450.0);
    let aggs = [
        AggregateFunction::Count,
        AggregateFunction::Mean(2),
        AggregateFunction::Min(3),
        AggregateFunction::Max(3),
    ];

    println!("\n-- first query (crude index), phi = 5% --");
    let res = engine.evaluate(&window, &aggs, 0.05)?;
    print_result(&aggs, &res);

    println!("\n-- same query again (index partially adapted) --");
    let res = engine.evaluate(&window, &aggs, 0.05)?;
    print_result(&aggs, &res);

    println!("\n-- tightening to exact (phi = 0) --");
    let res = engine.evaluate(&window, &aggs, 0.0)?;
    print_result(&aggs, &res);

    // --- 4. Compare against the exact baseline on a pan sequence ------------
    let (index2, _) = build(&file, &init)?;
    let mut exact = ExactEngine::new(index2, &file, AdaptConfig::default())?;
    let mut w = window;
    let (mut t_exact, mut t_approx) = (0.0f64, 0.0f64);
    let (mut io_exact, mut io_approx) = (0u64, 0u64);
    for _ in 0..10 {
        w = w.shifted(30.0, 15.0).clamped_into(&spec.domain);
        let e = exact.evaluate(&w, &aggs)?;
        let a = engine.evaluate(&w, &aggs, 0.05)?;
        t_exact += e.stats.elapsed.as_secs_f64();
        t_approx += a.stats.elapsed.as_secs_f64();
        io_exact += e.stats.io.objects_read;
        io_approx += a.stats.io.objects_read;
    }
    println!("\n-- 10-query pan sequence, exact vs phi=5% --");
    println!("exact : {t_exact:.4}s, {io_exact} objects read");
    println!("approx: {t_approx:.4}s, {io_approx} objects read");
    if t_approx > 0.0 {
        println!(
            "speedup: {:.2}x, I/O saved: {:.1}%",
            t_exact / t_approx,
            100.0 * (1.0 - io_approx as f64 / io_exact.max(1) as f64)
        );
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}

fn print_result(aggs: &[AggregateFunction], res: &ApproxResult) {
    for ((agg, value), ci) in aggs.iter().zip(&res.values).zip(&res.cis) {
        match ci {
            Some(ci) => println!(
                "  {agg} = {value}  (exact within [{:.4}, {:.4}])",
                ci.lo(),
                ci.hi()
            ),
            None => println!("  {agg} = {value}"),
        }
    }
    println!(
        "  bound {:.4}%  |  {} objects read, {} of {} partial tiles processed, {:.2?}",
        res.error_bound * 100.0,
        res.stats.io.objects_read,
        res.stats.tiles_processed,
        res.stats.tiles_partial,
        res.stats.elapsed,
    );
}
