//! A faithful walkthrough of Figure 1 of the paper: the same 3×3 tile
//! layout (with tile t4 already split into t4a–t4d from earlier
//! exploration), the same query Q, and the two adaptation outcomes —
//!
//! * **(b) exact answering**: both partially-contained tiles (t1, t3) are
//!   processed and split;
//! * **(c) partial adaptation**: only t3 (the tile with the wider
//!   confidence interval, i.e. the larger α=1 score) is processed; t1's
//!   file access is avoided because the bound already meets the accuracy
//!   constraint.
//!
//! Run with:
//! ```text
//! cargo run --example figure1_walkthrough
//! ```

use partial_adaptive_indexing::prelude::*;

/// The hotels of the running example: (x, y, rating).
/// Laid out so that, for Q = [5,18)×[5,18):
///  * t2   ([0,10)×[0,10))   overlaps Q but holds no objects;
///  * t1   ([0,10)×[10,20))  is partial with 1 selected hotel, ratings
///    tightly packed (narrow confidence interval);
///  * t3   ([10,20)×[0,10))  is partial with 2 selected hotels, ratings
///    spread wide (wide interval -> processed first);
///  * t4a  ([10,15)×[10,15)) is fully contained with 2 hotels.
fn hotels() -> Vec<Vec<f64>> {
    vec![
        // t1: one hotel inside Q, one outside (above it).
        vec![6.0, 12.0, 41.0],
        vec![2.0, 18.0, 39.0],
        // t3: two hotels inside Q (ratings 70 and 30), one outside.
        vec![12.0, 6.0, 70.0],
        vec![15.0, 8.0, 30.0],
        vec![18.0, 2.0, 50.0],
        // t4 region: two hotels in what will become t4a.
        vec![12.0, 12.0, 50.0],
        vec![14.0, 13.0, 52.0],
        // Far corner, untouched by Q.
        vec![25.0, 25.0, 45.0],
    ]
}

fn build_figure1_index(file: &MemFile) -> Result<ValinorIndex> {
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: 3, ny: 3 },
        domain: Some(Rect::new(0.0, 30.0, 0.0, 30.0)),
        metadata: MetadataPolicy::AllNumeric,
    };
    let (index, _) = build(file, &init)?;

    // Reproduce the pre-state of Figure 1(a): t4 has already been split
    // into t4a..t4d by an earlier interaction. A warm-up query whose edges
    // cross the t4 cell at (15, 15) does exactly that under the
    // query-aligned split policy.
    let cfg = EngineConfig {
        adapt: AdaptConfig {
            min_split_objects: 1,
            ..Default::default()
        },
        ..EngineConfig::paper_evaluation()
    };
    let mut engine = ApproximateEngine::new(index, file, cfg)?;
    let warmup = Rect::new(10.0, 15.0, 10.0, 15.0);
    engine.evaluate(&warmup, &[AggregateFunction::Mean(2)], 0.0)?;
    Ok(engine.into_index())
}

fn main() -> Result<()> {
    let rows = hotels();
    let file = MemFile::from_rows(Schema::synthetic(3), CsvFormat::default(), rows)?;
    let q = Rect::new(5.0, 18.0, 5.0, 18.0);
    let aggs = [AggregateFunction::Mean(2)];
    let cfg = EngineConfig {
        adapt: AdaptConfig {
            min_split_objects: 1,
            ..Default::default()
        },
        ..EngineConfig::paper_evaluation()
    };

    // ---------------------------------------------------------- (a) initial
    let index_a = build_figure1_index(&file)?;
    println!("(a) initial index — t4 pre-split into t4a..t4d");
    println!(
        "{}",
        pai_index::render::render_ascii(&index_a, Some(&q), 61, 31)
    );
    let classification = index_a.classify(&q);
    println!(
        "classification of Q: {} fully contained, {} partial, {} empty skipped\n",
        classification.full.len(),
        classification.partial.len(),
        classification.skipped_empty
    );
    assert_eq!(classification.full.len(), 1, "t4a answers from metadata");
    assert_eq!(classification.partial.len(), 2, "t1 and t3 need attention");

    // ------------------------------------------------- (b) exact adaptation
    let index_b = build_figure1_index(&file)?;
    file.counters().reset();
    let mut exact = ExactEngine::new(index_b, &file, cfg.adapt.clone())?;
    let res_b = exact.evaluate(&q, &aggs)?;
    println!(
        "(b) exact answering: mean = {}, read {} objects, split {} tiles",
        res_b.values[0], res_b.stats.io.objects_read, res_b.stats.tiles_split
    );
    println!(
        "{}",
        pai_index::render::render_ascii(exact.index(), Some(&q), 61, 31)
    );
    assert_eq!(
        res_b.stats.io.objects_read, 3,
        "the paper reads exactly three objects in the exact case"
    );
    assert_eq!(res_b.stats.tiles_split, 2, "both t1 and t3 split");

    // --------------------------------------- (c) partial adaptation (5 %)
    let index_c = build_figure1_index(&file)?;
    file.counters().reset();
    let mut approx = ApproximateEngine::new(index_c, &file, cfg)?;
    let res_c = approx.evaluate(&q, &aggs, 0.05)?;
    println!(
        "(c) approximate answering (phi=5%): mean ≈ {}, bound {:.3}%, read {} objects, split {} tiles",
        res_c.values[0],
        res_c.error_bound * 100.0,
        res_c.stats.io.objects_read,
        res_c.stats.tiles_split
    );
    println!(
        "{}",
        pai_index::render::render_ascii(approx.index(), Some(&q), 61, 31)
    );

    assert!(res_c.met_constraint);
    assert_eq!(
        res_c.stats.tiles_processed, 1,
        "only t3 (the wide-interval tile) is processed"
    );
    assert_eq!(
        res_c.stats.io.objects_read, 2,
        "t1's file access is avoided: only t3's two selected hotels are read"
    );

    // The exact answer is inside the approximate CI.
    let exact_mean = res_b.values[0].as_f64().expect("non-empty window");
    let ci = res_c.cis[0].expect("bounded CI");
    assert!(ci.contains(exact_mean));
    println!(
        "exact mean {} lies inside the approximate CI [{:.4}, {:.4}] — \
         accuracy guaranteed without touching t1.",
        exact_mean,
        ci.lo(),
        ci.hi()
    );
    Ok(())
}
