//! The accuracy/performance trade-off: sweep the accuracy constraint φ and
//! watch evaluation time, file I/O, and *realized* error move — including
//! the guarantee check that realized error never exceeds the reported
//! bound.
//!
//! Run with:
//! ```text
//! cargo run --release --example accuracy_tradeoff
//! ```

use pai_core::verify::verify_against_truth;
use partial_adaptive_indexing::prelude::*;

fn main() -> Result<()> {
    let spec = DatasetSpec {
        rows: 60_000,
        columns: 4,
        seed: 99,
        ..Default::default()
    };
    let file = spec.build_mem(CsvFormat::default())?;
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: 12, ny: 12 },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    let aggs = vec![AggregateFunction::Mean(2)];
    let start = Workload::centered_window(&spec.domain, 0.02);
    let workload = Workload::shifted_sequence(&spec.domain, start, 25, aggs.clone(), 11);

    println!(
        "{:>8} {:>12} {:>12} {:>14} {:>14} {:>12}",
        "phi", "total time", "objects", "mean bound", "max realized", "tiles proc."
    );
    for phi in [0.0, 0.001, 0.01, 0.05, 0.10, 0.25] {
        let (index, _) = build(&file, &init)?;
        let mut engine = ApproximateEngine::new(index, &file, EngineConfig::paper_evaluation())?;
        let mut total_time = 0.0f64;
        let mut total_objects = 0u64;
        let mut total_processed = 0usize;
        let mut bound_sum = 0.0f64;
        let mut max_realized = 0.0f64;
        for (i, q) in workload.queries.iter().enumerate() {
            let res = engine.evaluate(&q.window, &q.aggs, phi)?;
            assert!(res.met_constraint, "phi={phi} must be satisfiable");
            total_time += res.stats.elapsed.as_secs_f64();
            total_objects += res.stats.io.objects_read;
            total_processed += res.stats.tiles_processed;
            bound_sum += res.error_bound;
            // Ground-truth verification on every 5th query (full scans are
            // the expensive part of *verification*, not of the method).
            if i % 5 == 0 {
                let report = verify_against_truth(
                    &file,
                    &q.window,
                    &q.aggs,
                    &res,
                    NormalizationMode::Estimate,
                )?;
                assert!(report.all_ok(), "guarantee violated at query {i}");
                max_realized = max_realized.max(report.max_realized_error());
            }
        }
        println!(
            "{:>7.1}% {:>11.4}s {:>12} {:>13.4}% {:>13.4}% {:>12}",
            phi * 100.0,
            total_time,
            total_objects,
            100.0 * bound_sum / workload.len() as f64,
            100.0 * max_realized,
            total_processed,
        );
    }
    println!(
        "\nEvery verified query kept the exact answer inside its confidence \
         interval,\nand realized error never exceeded the reported bound."
    );
    Ok(())
}
