//! A multi-view "dashboard" over one shared adaptive index:
//!
//! * a UI thread runs accuracy-constrained queries (the user's brush),
//! * linked views run concurrent metadata-only estimates (no file I/O),
//! * a latency-sensitive widget uses the **I/O-budget** mode — the dual of
//!   the paper's problem: fix the cost, report the best bound achieved,
//! * and a progressive renderer replays the per-tile convergence trace.
//!
//! Run with:
//! ```text
//! cargo run --release --example dashboard
//! ```

use std::sync::Arc;

use pai_core::SharedIndex;
use partial_adaptive_indexing::prelude::*;

fn main() -> Result<()> {
    let spec = DatasetSpec {
        rows: 150_000,
        columns: 6,
        seed: 5,
        // Clustered storage + the zone-mapped compressed backend: the
        // dashboard's meters show blocks read and blocks skipped live.
        order: RowOrder::ZOrder,
        ..Default::default()
    };
    let file = spec.build_zone_mem()?;
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: 12, ny: 12 },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    let (index, _) = build(&file, &init)?;

    // --- shared index: one writer, several reader views ---------------------
    // Batched pipeline: 4 tiles per plan→fetch→apply round, so the brush
    // coalesces its reads while linked views keep rendering during its I/O.
    let shared = Arc::new(SharedIndex::new(
        index,
        file.clone(),
        EngineConfig {
            adapt_batch: 4,
            ..EngineConfig::paper_evaluation()
        },
    )?);
    let domain = spec.domain;

    println!("-- concurrent dashboard: 1 brushing thread + 3 linked views --");
    std::thread::scope(|s| {
        let brush = Arc::clone(&shared);
        s.spawn(move || {
            let mut w = Rect::new(200.0, 400.0, 200.0, 400.0);
            for i in 0..6 {
                w = w.shifted(40.0, 25.0).clamped_into(&domain);
                let res = brush
                    .evaluate(&w, &[AggregateFunction::Mean(2)], 0.02)
                    .expect("brush query");
                println!(
                    "  [brush {i}] mean {}  bound {:.3}%  {} objects in {} reads / {} blocks  \
                     (lock wait {:?}, {} plan conflicts)",
                    res.values[0],
                    res.error_bound * 100.0,
                    res.stats.io.objects_read,
                    res.stats.io.read_calls,
                    res.stats.io.blocks_read,
                    res.stats.lock_wait,
                    res.stats.plan_conflicts
                );
            }
        });
        for view in 0..3 {
            let reader = Arc::clone(&shared);
            s.spawn(move || {
                for i in 0..10 {
                    let off = (view * 120 + i * 35) as f64 % 600.0;
                    let w = Rect::new(off, off + 300.0, off, off + 300.0).clamped_into(&domain);
                    let res = reader
                        .estimate(&w, &[AggregateFunction::Mean(2)])
                        .expect("linked view estimate");
                    // Estimates are instantaneous (metadata-only); the view
                    // renders value + uncertainty.
                    assert!(res.stats.io.objects_read == 0);
                }
            });
        }
    });
    let linked_total = shared.with_index(|idx| idx.leaf_count());
    println!("  index now has {linked_total} leaf tiles (adapted by the brush)\n");

    // --- I/O-budget mode: "spend at most 500 object reads" ------------------
    println!("-- latency-first widget: fixed I/O budgets on a fresh index --");
    let (index2, _) = build(&file, &init)?;
    let mut budgeted = ApproximateEngine::new(index2, &file, EngineConfig::paper_evaluation())?;
    let hot = Rect::new(420.0, 620.0, 380.0, 580.0);
    for budget in [0u64, 100, 500, 5_000] {
        let res = budgeted.evaluate_with_io_budget(&hot, &[AggregateFunction::Mean(3)], budget)?;
        println!(
            "  budget {:>5} objects -> read {:>5}, bound {:>7.3}%",
            budget,
            res.stats.io.objects_read,
            res.error_bound * 100.0
        );
    }

    // --- progressive rendering: per-tile convergence trace ------------------
    println!("\n-- progressive convergence of one tight query (phi = 0.5%) --");
    let (index3, _) = build(&file, &init)?;
    let mut tracer = ApproximateEngine::new(index3, &file, EngineConfig::paper_evaluation())?;
    let (res, trace) = tracer.evaluate_traced(&hot, &[AggregateFunction::Mean(3)], 0.005)?;
    for step in trace.iter().take(8) {
        println!(
            "  after {:>2} tiles: estimate {:>9.4}  bound {:>7.3}%  ({} objects, {} blocks)",
            step.tiles_processed,
            step.estimate.unwrap_or(f64::NAN),
            step.error_bound * 100.0,
            step.objects_read,
            step.blocks_read
        );
    }
    if trace.len() > 8 {
        println!("  ... {} more steps ...", trace.len() - 8);
    }
    println!(
        "  final: {} within ±{:.3}% after {} tiles",
        res.values[0],
        res.error_bound * 100.0,
        res.stats.tiles_processed
    );
    Ok(())
}
