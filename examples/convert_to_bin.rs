//! Converts a CSV dataset to the binary columnar (`PaiBin`) and the
//! zone-mapped compressed (`PaiZone`) formats, then runs the quickstart
//! workload against all three backends (plus `PaiBin` behind a zero-copy
//! memory mapping), printing the I/O deltas — bytes, blocks, and the
//! zone-map skips of a ground-truth verification pass.
//!
//! Run with:
//! ```text
//! cargo run --release --example convert_to_bin
//! ```

use partial_adaptive_indexing::prelude::*;

struct WorkloadCost {
    objects: u64,
    bytes: u64,
    blocks: u64,
    blocks_skipped: u64,
    secs: f64,
}

fn run_workload(label: &str, file: &dyn RawFile, spec: &DatasetSpec) -> Result<WorkloadCost> {
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: 16, ny: 16 },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    let (index, report) = build(file, &init)?;
    println!(
        "  [{label}] initialized {}x{} grid over {} objects in {:.1?}",
        report.grid_nx, report.grid_ny, report.rows, report.elapsed
    );
    let mut engine = ApproximateEngine::new(index, file, EngineConfig::paper_evaluation())?;
    let aggs = [
        AggregateFunction::Count,
        AggregateFunction::Mean(2),
        AggregateFunction::Min(3),
        AggregateFunction::Max(3),
    ];
    // The quickstart exploration: one window queried twice, tightened to
    // exact, then a 10-step pan sequence.
    let before = file.counters().snapshot();
    let t0 = std::time::Instant::now();
    let mut w = Rect::new(250.0, 450.0, 250.0, 450.0);
    engine.evaluate(&w, &aggs, 0.05)?;
    engine.evaluate(&w, &aggs, 0.05)?;
    engine.evaluate(&w, &aggs, 0.0)?;
    for _ in 0..10 {
        w = w.shifted(30.0, 15.0).clamped_into(&spec.domain);
        engine.evaluate(&w, &aggs, 0.05)?;
        // The cautious analyst's verification read: exact truth for the
        // window, scanned with the window pushed down (zone maps skip).
        pai_storage::ground_truth::window_truth(file, &w, &[2])?;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let io = file.counters().snapshot().since(&before);
    println!(
        "  [{label}] workload: {} objects, {} bytes, {} seeks, {} blocks (+{} skipped), {elapsed:.4}s",
        io.objects_read, io.bytes_read, io.seeks, io.blocks_read, io.blocks_skipped
    );
    Ok(WorkloadCost {
        objects: io.objects_read,
        bytes: io.bytes_read,
        blocks: io.blocks_read,
        blocks_skipped: io.blocks_skipped,
        secs: elapsed,
    })
}

fn main() -> Result<()> {
    // --- 1. A raw CSV data file --------------------------------------------
    // Z-ordered layout: clustered storage is what converted archives look
    // like, and what gives PaiZone's zone maps something to prune.
    let spec = DatasetSpec {
        rows: 100_000,
        columns: 10,
        seed: 7,
        order: RowOrder::ZOrder,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join("pai_convert_to_bin");
    std::fs::create_dir_all(&dir)?;
    let csv_path = dir.join("dataset.csv");
    println!("generating {} rows of CSV ...", spec.rows);
    let csv = spec.write_csv(&csv_path, CsvFormat::default())?;
    println!(
        "csv: {} ({:.1} MiB)",
        csv_path.display(),
        csv.size_bytes() as f64 / (1024.0 * 1024.0)
    );

    // --- 2. One-pass conversions ---------------------------------------------
    let bin_path = dir.join("dataset.paibin");
    let t0 = std::time::Instant::now();
    let bin = write_bin(&csv, &bin_path)?;
    println!(
        "bin:  {} ({:.1} MiB), converted in {:.2?}",
        bin_path.display(),
        bin.size_bytes() as f64 / (1024.0 * 1024.0),
        t0.elapsed()
    );
    let zone_path = dir.join("dataset.paizone");
    let t0 = std::time::Instant::now();
    let zone = write_zone(&csv, &zone_path)?;
    println!(
        "zone: {} ({:.1} MiB, {:.1} bits/value), converted in {:.2?}",
        zone_path.display(),
        zone.size_bytes() as f64 / (1024.0 * 1024.0),
        zone.mean_bits_per_value(),
        t0.elapsed()
    );
    let mapped = BinFile::open_mapped(&bin_path)?;
    csv.counters().reset();

    // --- 3. The same workload on every backend -------------------------------
    println!("\nrunning the quickstart workload on each backend:");
    let cc = run_workload("csv ", &csv, &spec)?;
    let bc = run_workload("bin ", &bin, &spec)?;
    let mc = run_workload("mmap", &mapped, &spec)?;
    let zc = run_workload("zone", &zone, &spec)?;

    // --- 4. The I/O delta ---------------------------------------------------
    println!("\n== I/O delta (same queries, same answers) ==");
    assert_eq!(bc.objects, mc.objects, "mapped reads mirror streamed reads");
    println!(
        "objects read : csv {} / bin {} / zone {} (zone's pushdown verification never touches dead blocks)",
        cc.objects, bc.objects, zc.objects
    );
    println!(
        "bytes read   : csv {} vs bin {} vs zone {}  (bin {:.1}x, zone {:.1}x less than csv)",
        cc.bytes,
        bc.bytes,
        zc.bytes,
        cc.bytes as f64 / bc.bytes.max(1) as f64,
        cc.bytes as f64 / zc.bytes.max(1) as f64
    );
    println!(
        "blocks read  : bin {} vs zone {} (+{} proven dead and skipped)",
        bc.blocks, zc.blocks, zc.blocks_skipped
    );
    if bc.secs > 0.0 && zc.secs > 0.0 {
        println!(
            "wall clock   : csv {:.4}s, bin {:.4}s, mmap {:.4}s, zone {:.4}s",
            cc.secs, bc.secs, mc.secs, zc.secs
        );
    }
    assert!(zc.bytes < bc.bytes, "zone must move fewer bytes");
    assert!(zc.blocks < bc.blocks, "zone must touch fewer blocks");

    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&bin_path).ok();
    std::fs::remove_file(&zone_path).ok();
    Ok(())
}
