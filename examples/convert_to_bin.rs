//! Converts a CSV dataset to the binary columnar format (`PaiBin`) and runs
//! the quickstart workload against both backends, printing the I/O delta.
//!
//! Run with:
//! ```text
//! cargo run --release --example convert_to_bin
//! ```

use partial_adaptive_indexing::prelude::*;

fn run_workload(label: &str, file: &dyn RawFile, spec: &DatasetSpec) -> Result<(u64, u64, f64)> {
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: 16, ny: 16 },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    let (index, report) = build(file, &init)?;
    println!(
        "  [{label}] initialized {}x{} grid over {} objects in {:.1?}",
        report.grid_nx, report.grid_ny, report.rows, report.elapsed
    );
    let mut engine = ApproximateEngine::new(index, file, EngineConfig::paper_evaluation())?;
    let aggs = [
        AggregateFunction::Count,
        AggregateFunction::Mean(2),
        AggregateFunction::Min(3),
        AggregateFunction::Max(3),
    ];
    // The quickstart exploration: one window queried twice, tightened to
    // exact, then a 10-step pan sequence.
    let before = file.counters().snapshot();
    let t0 = std::time::Instant::now();
    let mut w = Rect::new(250.0, 450.0, 250.0, 450.0);
    engine.evaluate(&w, &aggs, 0.05)?;
    engine.evaluate(&w, &aggs, 0.05)?;
    engine.evaluate(&w, &aggs, 0.0)?;
    for _ in 0..10 {
        w = w.shifted(30.0, 15.0).clamped_into(&spec.domain);
        engine.evaluate(&w, &aggs, 0.05)?;
    }
    let elapsed = t0.elapsed().as_secs_f64();
    let io = file.counters().snapshot().since(&before);
    println!(
        "  [{label}] workload: {} objects, {} bytes, {} seeks, {elapsed:.4}s",
        io.objects_read, io.bytes_read, io.seeks
    );
    Ok((io.objects_read, io.bytes_read, elapsed))
}

fn main() -> Result<()> {
    // --- 1. A raw CSV data file --------------------------------------------
    let spec = DatasetSpec {
        rows: 100_000,
        columns: 10,
        seed: 7,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join("pai_convert_to_bin");
    std::fs::create_dir_all(&dir)?;
    let csv_path = dir.join("dataset.csv");
    println!("generating {} rows of CSV ...", spec.rows);
    let csv = spec.write_csv(&csv_path, CsvFormat::default())?;
    println!(
        "csv: {} ({:.1} MiB)",
        csv_path.display(),
        csv.size_bytes() as f64 / (1024.0 * 1024.0)
    );

    // --- 2. One-pass conversion to the binary columnar format ---------------
    let bin_path = dir.join("dataset.paibin");
    let t0 = std::time::Instant::now();
    let bin = write_bin(&csv, &bin_path)?;
    println!(
        "bin: {} ({:.1} MiB), converted in {:.2?}",
        bin_path.display(),
        bin.size_bytes() as f64 / (1024.0 * 1024.0),
        t0.elapsed()
    );
    csv.counters().reset();

    // --- 3. The same workload on both backends ------------------------------
    println!("\nrunning the quickstart workload on each backend:");
    let (csv_objects, csv_bytes, csv_secs) = run_workload("csv", &csv, &spec)?;
    let (bin_objects, bin_bytes, bin_secs) = run_workload("bin", &bin, &spec)?;

    // --- 4. The I/O delta ---------------------------------------------------
    println!("\n== I/O delta (same queries, same answers) ==");
    assert_eq!(csv_objects, bin_objects, "backends read the same objects");
    println!("objects read : {csv_objects} (identical by construction)");
    println!(
        "bytes read   : csv {csv_bytes} vs bin {bin_bytes}  ({:.1}x less I/O)",
        csv_bytes as f64 / bin_bytes.max(1) as f64
    );
    if bin_secs > 0.0 {
        println!(
            "wall clock   : csv {csv_secs:.4}s vs bin {bin_secs:.4}s  ({:.2}x speedup)",
            csv_secs / bin_secs
        );
    }

    std::fs::remove_file(&csv_path).ok();
    std::fs::remove_file(&bin_path).ok();
    Ok(())
}
