//! Map-based exploration scenario: hotels on a map, explored with pan/zoom
//! under an interactive accuracy constraint — the paper's motivating
//! use case (§2.1), on a real on-disk CSV with parallel initialization.
//!
//! Shows the full analytics surface: approximate window aggregates with
//! intervals, a metadata-only heatmap, an exact histogram, a filtered
//! aggregate, and Pearson correlation.
//!
//! Run with:
//! ```text
//! cargo run --release --example map_exploration
//! ```

use partial_adaptive_indexing::prelude::*;

fn main() -> Result<()> {
    // A "city map" of hotels: dense clusters (city centers) on a uniform
    // background. col2 ~ rating, col3 ~ price (both spatially smooth).
    let spec = DatasetSpec {
        rows: 200_000,
        columns: 6,
        distribution: PointDistribution::GaussianClusters {
            clusters: 4,
            sigma_frac: 0.04,
            background: 0.25,
        },
        value_model: ValueModel::SmoothField {
            base: 60.0,
            amplitude: 30.0,
            noise: 4.0,
        },
        seed: 2024,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join("pai_map_exploration");
    std::fs::create_dir_all(&dir)?;
    let path = dir.join("hotels.csv");
    println!("writing {} hotels to {} ...", spec.rows, path.display());
    let file = spec.write_csv(&path, CsvFormat::default())?;

    // Parallel initialization (the one unavoidable full scan).
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: 24, ny: 24 },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    let threads = std::thread::available_parallelism().map_or(2, |n| n.get().min(8));
    let (index, report) = build_parallel(&file, &init, threads)?;
    println!(
        "index initialized on {threads} threads in {:.2?} ({} tiles)",
        report.elapsed,
        index.leaf_count()
    );

    // Interactive session: overview at phi=5%, aggregating the rating.
    let rating = AggregateFunction::Mean(2);
    let start = Workload::centered_window(&spec.domain, 0.04);
    let mut session = ExplorationSession::new(
        index,
        &file,
        EngineConfig::paper_evaluation(),
        start,
        vec![rating, AggregateFunction::Count],
        0.05,
    )?;

    println!("\n-- exploring: initial view, three pans, one zoom --");
    session.evaluate()?;
    session.pan(0.15, 0.0)?;
    session.pan(0.15, 0.10)?;
    session.pan(0.0, 0.15)?;
    session.zoom(0.5)?;
    for (i, step) in session.history().iter().enumerate() {
        let mean = &step.result.values[0];
        let count = &step.result.values[1];
        println!(
            "step {i}: window {}  mean rating {}  ({} hotels)  bound {:.3}%  {} objects read  {:.2?}",
            step.window,
            mean,
            count,
            step.result.error_bound * 100.0,
            step.result.stats.io.objects_read,
            step.result.stats.elapsed,
        );
    }
    println!(
        "session total: {} objects read out of {} in the file",
        session.total_objects_read(),
        spec.rows
    );

    // Metadata-only heatmap of the current viewport: zero file I/O.
    println!("\n-- 6x4 mean-rating heatmap of the viewport (no file reads) --");
    let before = file.counters().objects_read();
    let cells = analytics::heatmap(session.index(), session.window(), 6, 4, rating)?;
    assert_eq!(
        file.counters().objects_read(),
        before,
        "heatmap is metadata-only"
    );
    for row in cells.chunks(6).rev() {
        let line: Vec<String> = row
            .iter()
            .map(|c| match c.estimate {
                Some(v) => format!("{v:6.1}"),
                None => "     -".into(),
            })
            .collect();
        println!("  {}", line.join(" "));
    }

    // Exact analytics over the viewport (these do read the file).
    let window = *session.window();
    let idx = session.index();
    println!("\n-- exact analytics over the viewport --");
    let hist = analytics::histogram(idx, &file, &window, 2, 8, None)?;
    println!("rating histogram: {:?}", hist.counts);
    let q = WindowQuery::new(
        window,
        vec![AggregateFunction::Count, AggregateFunction::Mean(3)],
    )
    .with_filter(Filter::new(2, 60.0, 100.0)); // only highly-rated hotels
    let vals = analytics::filtered_aggregate(idx, &file, &q)?;
    println!(
        "hotels rated 60+: {}  mean price among them: {}",
        vals[0], vals[1]
    );
    if let Some(r) = analytics::pearson(idx, &file, &window, 2, 3)? {
        println!("rating-price Pearson correlation: {r:.3}");
    }

    std::fs::remove_file(&path).ok();
    Ok(())
}
