//! # Partial Adaptive Indexing for Approximate Query Answering
//!
//! A from-scratch Rust implementation of the VLDB 2024 (BigVis) paper
//! *Partial Adaptive Indexing for Approximate Query Answering* (Maroulis,
//! Bikakis, Stamatopoulos, Papastefanatos), together with every substrate it
//! builds on: in-situ CSV storage, the VALINOR-style hierarchical tile
//! index with exact adaptive refinement, the visual-exploration query
//! model, and a benchmark harness regenerating the paper's figures.
//!
//! ## Quick start
//!
//! ```
//! use partial_adaptive_indexing::prelude::*;
//!
//! // 1. A raw CSV data source (here: synthetic, in memory).
//! let spec = DatasetSpec { rows: 20_000, columns: 4, seed: 1, ..Default::default() };
//! let file = spec.build_mem(CsvFormat::default()).unwrap();
//!
//! // 2. Build the crude initial index (one scan).
//! let init = InitConfig {
//!     grid: GridSpec::Fixed { nx: 8, ny: 8 },
//!     domain: Some(spec.domain),
//!     metadata: MetadataPolicy::AllNumeric,
//! };
//! let (index, _report) = build(&file, &init).unwrap();
//!
//! // 3. Ask for the mean of column 2 in a window, within 5 % error.
//! let mut engine =
//!     ApproximateEngine::new(index, &file, EngineConfig::paper_evaluation()).unwrap();
//! let window = Rect::new(200.0, 600.0, 200.0, 600.0);
//! let result = engine
//!     .evaluate(&window, &[AggregateFunction::Mean(2)], 0.05)
//!     .unwrap();
//!
//! assert!(result.met_constraint);
//! let ci = result.cis[0].unwrap();
//! println!(
//!     "mean ≈ {} (exact answer guaranteed within [{}, {}])",
//!     result.values[0], ci.lo(), ci.hi()
//! );
//! ```
//!
//! ## Crate map
//!
//! | crate | role |
//! |-------|------|
//! | [`pai_common`] | geometry, interval arithmetic, running stats, errors |
//! | [`pai_storage`] | raw CSV files: schema, parsing, offset reads, generators |
//! | [`pai_index`] | VALINOR tile index: init, exact adaptation, metadata |
//! | [`pai_core`] | the paper's contribution: CIs, error bounds, partial adaptation |
//! | [`pai_query`] | exploration model: sessions, workloads, analytics, runners |
//! | [`pai_server`] | multi-session socket server over `SharedIndex` with admission control |
//!
//! See `DESIGN.md` for the full system inventory and `EXPERIMENTS.md` for
//! paper-vs-measured results.

pub use pai_common;
pub use pai_core;
pub use pai_index;
pub use pai_query;
pub use pai_server;
pub use pai_storage;

/// One-stop imports for applications and examples.
pub mod prelude {
    pub use pai_common::geometry::{Point2, Rect};
    pub use pai_common::{
        AggregateFunction, AggregateValue, AtomicHistogram, Interval, IoCounters, IoSnapshot,
        LatencyHistogram, PaiError, Result, RowLocator, RunningStats,
    };
    pub use pai_core::{
        predict_query_io, ApproxResult, ApproximateEngine, EagerRefinement, EngineConfig,
        IoPrediction, NormalizationMode, SelectionPolicy, SharedIndex, ValueEstimator,
    };
    pub use pai_index::init::{build, build_clipped, build_parallel, GridSpec, InitConfig};
    pub use pai_index::{
        AdaptConfig, EnrichPolicy, ExactEngine, MetadataPolicy, ReadPolicy, SplitPolicy,
        ValinorIndex,
    };
    pub use pai_query::{
        analytics, report, trace, ExplorationSession, Filter, Method, WindowQuery, Workload,
    };
    pub use pai_server::{
        PaiClient, PaiServer, ServeEngine, ServedAnswer, ServedReply, ServerConfig, ServerStats,
    };
    pub use pai_storage::{
        convert_to_bin, convert_to_zone, convert_to_zone_spec, write_bin, write_zone, BinFile,
        BlockCache, BlockStats, BlockSynopsis, CacheConfig, CachedFile, ColumnSynopsis, CsvFile,
        CsvFormat, DatasetSpec, Fault, FaultPlan, HttpFile, HttpOptions, LatencyFile, MemFile,
        ObjectStore, PointDistribution, RawFile, RowOrder, Schema, StorageBackend, SynopsisSpec,
        ValueModel, ZoneFile,
    };
}

#[cfg(test)]
mod tests {
    #[test]
    fn prelude_compiles_and_reexports() {
        use crate::prelude::*;
        // Touch a few re-exports so regressions in the facade surface here.
        let _ = AggregateFunction::Count;
        let _ = EngineConfig::paper_evaluation();
        let _ = SplitPolicy::QueryAligned;
        let r = Rect::new(0.0, 1.0, 0.0, 1.0);
        assert!(r.area() > 0.0);
    }
}
