//! Integration tests for the workload/runner/report layer: determinism,
//! trace round-trips through the runner, and the report summary math over
//! real runs.

use pai_query::report::{series_correlation, summarize, to_csv};
use pai_query::{compare_methods, run_workload};
use partial_adaptive_indexing::prelude::*;

fn setup() -> (MemFile, DatasetSpec, InitConfig, Workload) {
    let spec = DatasetSpec {
        rows: 12_000,
        columns: 4,
        seed: 33,
        ..Default::default()
    };
    let file = spec.build_mem(CsvFormat::default()).unwrap();
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: 8, ny: 8 },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    let start = Workload::centered_window(&spec.domain, 0.02);
    let wl =
        Workload::shifted_sequence(&spec.domain, start, 20, vec![AggregateFunction::Mean(2)], 9);
    (file, spec, init, wl)
}

#[test]
fn runs_are_deterministic_in_io() {
    let (file, _, init, wl) = setup();
    let cfg = EngineConfig::paper_evaluation();
    let a = run_workload(&file, &init, &cfg, &wl, Method::Approx { phi: 0.05 }).unwrap();
    let b = run_workload(&file, &init, &cfg, &wl, Method::Approx { phi: 0.05 }).unwrap();
    // Timing differs; logical work must not.
    assert_eq!(a.objects_series(), b.objects_series());
    let splits_a: Vec<usize> = a.records.iter().map(|r| r.tiles_split).collect();
    let splits_b: Vec<usize> = b.records.iter().map(|r| r.tiles_split).collect();
    assert_eq!(splits_a, splits_b);
    for (ra, rb) in a.records.iter().zip(&b.records) {
        assert_eq!(ra.values[0].as_f64(), rb.values[0].as_f64());
        assert_eq!(ra.error_bound, rb.error_bound);
    }
}

#[test]
fn trace_round_trip_preserves_run_behaviour() {
    let (file, _, init, wl) = setup();
    let text = pai_query::trace::to_text(&wl);
    let replayed = pai_query::trace::from_text(&text).unwrap();
    assert_eq!(wl.queries, replayed.queries);

    let cfg = EngineConfig::paper_evaluation();
    let a = run_workload(&file, &init, &cfg, &wl, Method::Approx { phi: 0.05 }).unwrap();
    let b = run_workload(&file, &init, &cfg, &replayed, Method::Approx { phi: 0.05 }).unwrap();
    assert_eq!(a.objects_series(), b.objects_series());
}

#[test]
fn summary_and_csv_over_real_runs() {
    let (file, _, init, wl) = setup();
    let cfg = EngineConfig::paper_evaluation();
    let runs = compare_methods(
        &file,
        &init,
        &cfg,
        &wl,
        &[Method::Exact, Method::Approx { phi: 0.05 }],
    )
    .unwrap();

    let csv = to_csv(&runs);
    assert_eq!(csv.lines().count(), wl.len() + 1);
    assert!(csv.starts_with(
        "query,exact_time_ms,exact_objects,exact_bytes,exact_read_calls,exact_blocks_read,\
         exact_blocks_skipped,exact_http_requests,exact_http_bytes,exact_retries,\
         exact_fetch_inflight_peak,exact_overlap_ratio,exact_parts_resized,\
         exact_fetch_p50_us,exact_fetch_p99_us,\
         exact_cache_hits,exact_cache_misses,exact_cache_evictions,exact_cache_spill_bytes,\
         exact_cache_mem_bytes,exact_synopsis_hits,exact_synopsis_blocks,exact_synopsis_bytes,\
         exact_rows_ingested,exact_delta_blocks,exact_compactions,\
         exact_blocks_rewritten,exact_cache_invalidations,\
         exact_predicted_bytes,exact_lock_wait_ms,phi=5%_time_ms,phi=5%_objects,\
         phi=5%_bytes,phi=5%_read_calls,phi=5%_blocks_read,phi=5%_blocks_skipped,\
         phi=5%_http_requests,phi=5%_http_bytes,phi=5%_retries,phi=5%_fetch_inflight_peak,\
         phi=5%_overlap_ratio,phi=5%_parts_resized,phi=5%_fetch_p50_us,phi=5%_fetch_p99_us,\
         phi=5%_cache_hits,phi=5%_cache_misses,phi=5%_cache_evictions,phi=5%_cache_spill_bytes,\
         phi=5%_cache_mem_bytes,phi=5%_synopsis_hits,phi=5%_synopsis_blocks,\
         phi=5%_synopsis_bytes,phi=5%_rows_ingested,phi=5%_delta_blocks,phi=5%_compactions,\
         phi=5%_blocks_rewritten,phi=5%_cache_invalidations,\
         phi=5%_predicted_bytes,phi=5%_lock_wait_ms"
    ));

    // predicted_bytes tracks the exact run's metered bytes. On a CSV
    // backend the prediction prices objects at the file's *mean* row
    // length, so allow a small relative tolerance for row-length variance
    // (the cost-estimate gate pins per-backend tolerances properly).
    for rec in &runs[0].records {
        let (p, m) = (rec.predicted_bytes as f64, rec.bytes_read as f64);
        assert!(
            (p - m).abs() <= 0.02 * m + 64.0,
            "query {}: predicted {} vs metered {}",
            rec.query_index,
            rec.predicted_bytes,
            rec.bytes_read
        );
    }

    let summary = summarize(&runs[0], &runs[1], 10);
    assert!(
        summary.objects_ratio <= 1.0,
        "approx reads at most what exact reads"
    );
    assert!(
        summary.bytes_ratio <= 1.0,
        "fewer objects on the same backend means fewer bytes"
    );
    assert!(summary.overall_speedup > 0.0);
    assert_eq!(summary.focus_query, 10);

    // The paper's C3 claim direction: evaluation time correlates with
    // objects read for the exact method on a fresh index.
    let corr = series_correlation(&runs[0].time_series_secs(), &runs[0].objects_series());
    if let Some(c) = corr {
        assert!(c > 0.0, "time should move with I/O, got {c}");
    }
}

#[test]
fn zoom_and_jump_workloads_complete_under_all_methods() {
    let (file, spec, init, _) = setup();
    let cfg = EngineConfig::paper_evaluation();
    let aggs = vec![AggregateFunction::Sum(2), AggregateFunction::Count];
    for wl in [
        Workload::zoom_sequence(&spec.domain, 8, 0.6, aggs.clone()),
        Workload::random_jumps(&spec.domain, 8, 0.01, aggs.clone(), 4),
        Workload::dense_focus(
            &spec.domain,
            &[(250.0, 250.0), (750.0, 750.0)],
            8,
            0.01,
            aggs,
        ),
    ] {
        let runs = compare_methods(
            &file,
            &init,
            &cfg,
            &wl,
            &[Method::Exact, Method::Approx { phi: 0.05 }],
        )
        .unwrap();
        assert_eq!(runs[0].records.len(), wl.len(), "{}", wl.name);
        assert_eq!(runs[1].records.len(), wl.len(), "{}", wl.name);
        assert!(runs[1]
            .records
            .iter()
            .all(|r| r.error_bound <= 0.05 + 1e-12));
    }
}

#[test]
fn eager_refinement_improves_later_queries() {
    let (file, _, init, wl) = setup();
    let lazy_cfg = EngineConfig::paper_evaluation();
    let eager_cfg = EngineConfig {
        eager: EagerRefinement::ExtraTiles(4),
        ..EngineConfig::paper_evaluation()
    };
    let lazy = run_workload(&file, &init, &lazy_cfg, &wl, Method::Approx { phi: 0.05 }).unwrap();
    let eager = run_workload(&file, &init, &eager_cfg, &wl, Method::Approx { phi: 0.05 }).unwrap();
    // Eager refinement front-loads I/O; by the tail of the sequence the
    // per-query bounds should be no worse on average.
    let tail = wl.len() / 2;
    let mean = |run: &pai_query::MethodRun| {
        run.records[tail..]
            .iter()
            .map(|r| r.error_bound)
            .sum::<f64>()
            / (wl.len() - tail) as f64
    };
    assert!(
        mean(&eager) <= mean(&lazy) + 1e-12,
        "eager tail bounds {} vs lazy {}",
        mean(&eager),
        mean(&lazy)
    );
}
