//! Pipeline-equivalence properties: batching the adaptation loop must be
//! invisible to the query answers — only the I/O call pattern may change.
//!
//! The two-phase pipeline (plan → coalesced fetch → apply + re-check)
//! guarantees, by construction:
//!
//! 1. `adapt_batch = 1` reproduces the sequential tile-at-a-time loop
//!    **byte-for-byte**: one plan per iteration, one `read_rows` call with
//!    the same locators and attributes, identical meters and trajectory
//!    (this is also pinned by every pre-pipeline engine test still passing
//!    unchanged);
//! 2. `adapt_batch > 1` yields **identical answers, CIs, error bounds, and
//!    processed-tile trajectory** for *any* φ — the apply stage re-checks
//!    the stop rule after every tile and discards plans fetched past the
//!    stop point — while issuing **strictly fewer `read_rows` calls**
//!    whenever any query processes two or more tiles;
//! 3. all of this holds on every storage backend (CSV, `PaiBin`,
//!    `PaiZone`, `PaiZone` served over HTTP ranged GETs, and the remote
//!    file behind the tiered block cache), and the backends still agree
//!    with each other at every batch size — compression, zone-map
//!    pushdown, the remote transport, and the cache tiers are invisible
//!    to the answers too;
//! 4. the overlapped fetch pipeline (`fetch_workers > 1`) is invisible in
//!    the same sense: worker counts {1, 2, 8} yield identical answers,
//!    CIs, error bounds, and trajectories on every backend, and the
//!    *logical* meters (objects/bytes/seeks/read_calls/blocks) are
//!    byte-identical to the sequential path per query — overlap may only
//!    move wall-clock and the transport-side `fetch_*` meters.

use partial_adaptive_indexing::prelude::*;
use proptest::prelude::*;

fn dataset(rows: u64, seed: u64, columns: usize) -> DatasetSpec {
    DatasetSpec {
        rows,
        columns,
        seed,
        ..Default::default()
    }
}

fn window_strategy() -> impl Strategy<Value = Rect> {
    (0.0f64..800.0, 0.0f64..800.0, 50.0f64..700.0, 50.0f64..700.0)
        .prop_map(|(x0, y0, w, h)| Rect::new(x0, (x0 + w).min(1000.0), y0, (y0 + h).min(1000.0)))
}

/// Per-query measurements of one sequence run at a given batch size.
struct BatchRun {
    results: Vec<ApproxResult>,
    /// Per-query (read_calls, tiles_processed).
    per_query: Vec<(u64, usize)>,
    objects_read: u64,
    leaf_count: usize,
}

fn run_sequence(
    file: &dyn RawFile,
    spec: &DatasetSpec,
    windows: &[Rect],
    phi: f64,
    batch: usize,
) -> BatchRun {
    run_sequence_overlapped(file, spec, windows, phi, batch, 1)
}

fn run_sequence_overlapped(
    file: &dyn RawFile,
    spec: &DatasetSpec,
    windows: &[Rect],
    phi: f64,
    batch: usize,
    workers: usize,
) -> BatchRun {
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: 5, ny: 5 },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    let (index, _) = build(file, &init).expect("init");
    let config = EngineConfig {
        adapt_batch: batch,
        fetch_workers: workers,
        ..EngineConfig::paper_evaluation()
    };
    let mut engine = ApproximateEngine::new(index, file, config).expect("engine");
    file.counters().reset();
    let aggs = [
        AggregateFunction::Count,
        AggregateFunction::Sum(2),
        AggregateFunction::Mean(2),
    ];
    let mut results = Vec::with_capacity(windows.len());
    let mut per_query = Vec::with_capacity(windows.len());
    for w in windows {
        let res = engine.evaluate(w, &aggs, phi).expect("evaluate");
        per_query.push((res.stats.io.read_calls, res.stats.tiles_processed));
        results.push(res);
    }
    BatchRun {
        results,
        per_query,
        objects_read: file.counters().objects_read(),
        leaf_count: engine.index().leaf_count(),
    }
}

/// Asserts the overlapped-pipeline contract between a `fetch_workers = 1`
/// run and a `fetch_workers = k` run on the same backend: identical
/// answers, CIs, bounds, trajectories, resulting tree, and per-query
/// *logical* meters. Only the transport-side fetch meters may differ.
fn assert_overlap_equivalent(seq: &BatchRun, overlapped: &BatchRun, workers: usize) {
    for (i, (a, b)) in seq.results.iter().zip(&overlapped.results).enumerate() {
        for (av, bv) in a.values.iter().zip(&b.values) {
            assert_eq!(
                av.as_f64(),
                bv.as_f64(),
                "query {i} answer, workers {workers}"
            );
        }
        for (ac, bc) in a.cis.iter().zip(&b.cis) {
            assert_eq!(ac, bc, "query {i} CI, workers {workers}");
        }
        assert_eq!(
            a.error_bound, b.error_bound,
            "query {i} bound, workers {workers}"
        );
        assert_eq!(
            a.stats.tiles_processed, b.stats.tiles_processed,
            "query {i} trajectory, workers {workers}"
        );
        assert_eq!(
            a.stats.tiles_split, b.stats.tiles_split,
            "query {i} splits, workers {workers}"
        );
        // Logical meters are byte-identical per query; transport meters
        // (http_*, retries, fetch_*) are exempt by the metering invariant.
        let (x, y) = (&a.stats.io, &b.stats.io);
        assert_eq!(
            x.objects_read, y.objects_read,
            "query {i} objects, workers {workers}"
        );
        assert_eq!(
            x.bytes_read, y.bytes_read,
            "query {i} bytes, workers {workers}"
        );
        assert_eq!(x.seeks, y.seeks, "query {i} seeks, workers {workers}");
        assert_eq!(
            x.read_calls, y.read_calls,
            "query {i} calls, workers {workers}"
        );
        assert_eq!(
            x.blocks_read, y.blocks_read,
            "query {i} blocks, workers {workers}"
        );
        assert_eq!(
            x.blocks_skipped, y.blocks_skipped,
            "query {i} skips, workers {workers}"
        );
        assert_eq!(
            x.full_scans, y.full_scans,
            "query {i} scans, workers {workers}"
        );
    }
    assert_eq!(
        seq.leaf_count, overlapped.leaf_count,
        "leaf counts, workers {workers}"
    );
    assert_eq!(
        seq.objects_read, overlapped.objects_read,
        "total objects, workers {workers}"
    );
}

/// Asserts the equivalence contract between a batch-1 run and a batch-k run
/// on the same backend.
fn assert_batch_equivalent(seq: &BatchRun, batched: &BatchRun, batch: usize) {
    for (i, (a, b)) in seq.results.iter().zip(&batched.results).enumerate() {
        for (av, bv) in a.values.iter().zip(&b.values) {
            assert_eq!(av.as_f64(), bv.as_f64(), "query {i} answer, batch {batch}");
        }
        for (ac, bc) in a.cis.iter().zip(&b.cis) {
            assert_eq!(ac, bc, "query {i} CI, batch {batch}");
        }
        assert_eq!(
            a.error_bound, b.error_bound,
            "query {i} bound, batch {batch}"
        );
        assert_eq!(
            a.met_constraint, b.met_constraint,
            "query {i} met, batch {batch}"
        );
        assert_eq!(
            a.stats.tiles_processed, b.stats.tiles_processed,
            "query {i} trajectory, batch {batch}"
        );
        assert_eq!(
            a.stats.tiles_split, b.stats.tiles_split,
            "query {i} splits, batch {batch}"
        );
    }
    // Discarded plans never mutate: the same tree comes out.
    assert_eq!(
        seq.leaf_count, batched.leaf_count,
        "leaf counts, batch {batch}"
    );
    // Speculation may read extra objects past the stop point, never fewer.
    assert!(
        batched.objects_read >= seq.objects_read,
        "batching cannot reduce objects: {} vs {}",
        batched.objects_read,
        seq.objects_read
    );
    // The batching win: strictly fewer read_rows calls on any query that
    // processed >= 2 tiles (they share one coalesced call per batch), and
    // never more calls on any query.
    for (i, (&(c1, p1), &(ck, _))) in seq.per_query.iter().zip(&batched.per_query).enumerate() {
        assert!(
            ck <= c1,
            "query {i}: batch {batch} made more calls ({ck}) than sequential ({c1})"
        );
        if p1 >= 2 && c1 >= 2 {
            assert!(
                ck < c1,
                "query {i}: {p1} tiles processed but batch {batch} did not \
                 coalesce calls ({ck} vs {c1})"
            );
        }
    }
}

/// Mid-pipeline fault recovery under overlap: periodic server faults (5xx,
/// connection drop, short read) fire on some span-group while later groups
/// are still in flight, for every fault flavor. The overlapped client must
/// retry boundedly and the run must answer exactly like the local zone
/// file with byte-identical logical meters — which is only possible if no
/// span was lost, duplicated, or torn mid-stream.
#[test]
fn overlapped_pipeline_recovers_from_midstream_faults() {
    for plan in ["5xx:3", "drop:5", "short:4"] {
        let spec = dataset(700, 21, 4);
        let csv = spec.build_mem(CsvFormat::default()).unwrap();
        let zone = ZoneFile::from_bytes(convert_to_zone(&csv).unwrap()).unwrap();
        let store =
            ObjectStore::serve_with(std::time::Duration::ZERO, plan.parse().unwrap()).unwrap();
        store.put("data.paizone", convert_to_zone(&csv).unwrap());
        // Tiny parts force many ranged GETs, so the periodic fault plans
        // actually trip mid-stream while later groups are in flight.
        let http = HttpFile::open(
            store.addr(),
            "data.paizone",
            HttpOptions::with_part_bytes(1024).with_fetch_workers(8),
        )
        .unwrap();
        let windows = [
            Rect::new(100.0, 500.0, 100.0, 500.0),
            Rect::new(250.0, 750.0, 200.0, 650.0),
        ];
        let seq = run_sequence_overlapped(&zone, &spec, &windows, 0.02, 8, 1);
        let ovl = run_sequence_overlapped(&http, &spec, &windows, 0.02, 8, 8);
        assert_overlap_equivalent(&seq, &ovl, 8);
        assert!(store.faults_injected() > 0, "{plan}: faults actually fired");
        assert!(
            http.counters().retries() > 0,
            "{plan}: the retry path carried the workload"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Batched vs sequential equivalence on both backends, plus the
    /// cross-backend agreement at every batch size.
    #[test]
    fn prop_batched_pipeline_equivalent(
        rows in 300u64..900,
        seed in 0u64..5,
        batch in 2usize..9,
        phi in prop_oneof![Just(0.0), 0.005f64..0.1],
        w1 in window_strategy(),
        w2 in window_strategy(),
        w3 in window_strategy(),
    ) {
        let spec = dataset(rows, seed, 4);
        let csv = spec.build_mem(CsvFormat::default()).unwrap();
        let bin = BinFile::from_bytes(convert_to_bin(&csv).unwrap()).unwrap();
        let zone = ZoneFile::from_bytes(convert_to_zone(&csv).unwrap()).unwrap();
        let store = ObjectStore::serve().unwrap();
        store.put("data.paizone", convert_to_zone(&csv).unwrap());
        let http = HttpFile::open(store.addr(), "data.paizone", HttpOptions::default()).unwrap();
        let windows = [w1, w2, w3];

        let csv_seq = run_sequence(&csv, &spec, &windows, phi, 1);
        let csv_batch = run_sequence(&csv, &spec, &windows, phi, batch);
        assert_batch_equivalent(&csv_seq, &csv_batch, batch);

        let bin_seq = run_sequence(&bin, &spec, &windows, phi, 1);
        let bin_batch = run_sequence(&bin, &spec, &windows, phi, batch);
        assert_batch_equivalent(&bin_seq, &bin_batch, batch);

        let zone_seq = run_sequence(&zone, &spec, &windows, phi, 1);
        let zone_batch = run_sequence(&zone, &spec, &windows, phi, batch);
        assert_batch_equivalent(&zone_seq, &zone_batch, batch);

        let http_seq = run_sequence(&http, &spec, &windows, phi, 1);
        let http_batch = run_sequence(&http, &spec, &windows, phi, batch);
        assert_batch_equivalent(&http_seq, &http_batch, batch);

        // Backends agree with each other at the batched size too (the
        // sequential cross-backend agreement is backend_equivalence.rs's
        // job).
        for (i, (((c, b), z), h)) in csv_batch
            .results
            .iter()
            .zip(&bin_batch.results)
            .zip(&zone_batch.results)
            .zip(&http_batch.results)
            .enumerate()
        {
            for (((cv, bv), zv), hv) in
                c.values.iter().zip(&b.values).zip(&z.values).zip(&h.values)
            {
                prop_assert_eq!(cv.as_f64(), bv.as_f64(), "query {} cross-backend", i);
                prop_assert_eq!(cv.as_f64(), zv.as_f64(), "query {} zone cross-backend", i);
                prop_assert_eq!(cv.as_f64(), hv.as_f64(), "query {} http cross-backend", i);
            }
            prop_assert_eq!(c.error_bound, b.error_bound, "query {} cross-backend bound", i);
            prop_assert_eq!(c.error_bound, z.error_bound, "query {} zone cross-backend bound", i);
            prop_assert_eq!(c.error_bound, h.error_bound, "query {} http cross-backend bound", i);
            prop_assert_eq!(
                c.stats.io.read_calls, b.stats.io.read_calls,
                "query {} cross-backend call count", i
            );
            prop_assert_eq!(
                c.stats.io.read_calls, z.stats.io.read_calls,
                "query {} zone cross-backend call count", i
            );
            prop_assert_eq!(
                c.stats.io.read_calls, h.stats.io.read_calls,
                "query {} http cross-backend call count", i
            );
        }
        // The tiered block cache is invisible to the batched pipeline too:
        // batch-1 vs batch-k equivalence holds on the cached remote file
        // (the batched run rides a cache the sequential run warmed), and
        // its batched run agrees with the uncached one on answers and
        // logical meters.
        let cached = CachedFile::with_config(
            Box::new(HttpFile::open(store.addr(), "data.paizone", HttpOptions::default()).unwrap()),
            CacheConfig::new(4 << 20, 0),
        );
        let cached_seq = run_sequence(&cached, &spec, &windows, phi, 1);
        let cached_batch = run_sequence(&cached, &spec, &windows, phi, batch);
        assert_batch_equivalent(&cached_seq, &cached_batch, batch);
        for (i, (h, q)) in http_batch.results.iter().zip(&cached_batch.results).enumerate() {
            for (hv, qv) in h.values.iter().zip(&q.values) {
                prop_assert_eq!(hv.as_f64(), qv.as_f64(), "query {} cached cross-backend", i);
            }
            prop_assert_eq!(h.error_bound, q.error_bound, "query {} cached bound", i);
            prop_assert_eq!(
                h.stats.io.read_calls, q.stats.io.read_calls,
                "query {} cached call count", i
            );
        }
        prop_assert_eq!(csv_batch.leaf_count, bin_batch.leaf_count);
        prop_assert_eq!(csv_batch.leaf_count, zone_batch.leaf_count);
        prop_assert_eq!(csv_batch.leaf_count, http_batch.leaf_count);
        prop_assert_eq!(http_batch.leaf_count, cached_batch.leaf_count);
        prop_assert_eq!(http_batch.objects_read, cached_batch.objects_read);
        // Zone answers the same fetch workload in fewer or equal bytes than
        // PaiBin at every batch size (bit-packed values vs 8-byte values);
        // CSV is the byte ceiling. The remote transport changes none of it.
        prop_assert!(zone_batch.objects_read == bin_batch.objects_read);
        prop_assert!(http_batch.objects_read == zone_batch.objects_read);
    }

    /// The overlapped fetch pipeline at worker counts {1, 2, 8} on every
    /// backend: identical answers, CIs, bounds, trajectories, and
    /// byte-identical per-query logical meters vs the sequential path.
    /// Batched so the pipeline has multi-unit rounds to overlap.
    #[test]
    fn prop_overlapped_pipeline_equivalent(
        rows in 300u64..800,
        seed in 10u64..15,
        batch in prop_oneof![Just(1usize), Just(8usize)],
        phi in prop_oneof![Just(0.0), 0.005f64..0.1],
        w1 in window_strategy(),
        w2 in window_strategy(),
    ) {
        let spec = dataset(rows, seed, 4);
        let csv = spec.build_mem(CsvFormat::default()).unwrap();
        let bin = BinFile::from_bytes(convert_to_bin(&csv).unwrap()).unwrap();
        let zone = ZoneFile::from_bytes(convert_to_zone(&csv).unwrap()).unwrap();
        let store = ObjectStore::serve().unwrap();
        store.put("data.paizone", convert_to_zone(&csv).unwrap());
        let windows = [w1, w2];

        let backends: [(&str, &dyn RawFile); 3] =
            [("csv", &csv), ("bin", &bin), ("zone", &zone)];
        for (name, file) in backends {
            let seq = run_sequence_overlapped(file, &spec, &windows, phi, batch, 1);
            for workers in [2usize, 8] {
                let ovl = run_sequence_overlapped(file, &spec, &windows, phi, batch, workers);
                // A panic message names the backend via the assert labels.
                let _ = name;
                assert_overlap_equivalent(&seq, &ovl, workers);
            }
        }
        // HTTP: overlap applies at both the engine layer and the ranged-GET
        // client; answers and logical meters still cannot move.
        let http_seq = {
            let f = HttpFile::open(store.addr(), "data.paizone", HttpOptions::default()).unwrap();
            run_sequence_overlapped(&f, &spec, &windows, phi, batch, 1)
        };
        for workers in [2usize, 8] {
            let f = HttpFile::open(
                store.addr(),
                "data.paizone",
                HttpOptions::default().with_fetch_workers(workers),
            )
            .unwrap();
            let ovl = run_sequence_overlapped(&f, &spec, &windows, phi, batch, workers);
            assert_overlap_equivalent(&http_seq, &ovl, workers);
        }

        // Cached HTTP at every worker count, one *shared* cache warming
        // across the runs: the tiers may only remove transport — answers
        // and per-query logical meters stay byte-identical to the
        // sequential uncached run even when later runs are served mostly
        // from memory.
        let shared = std::sync::Arc::new(BlockCache::new(CacheConfig::new(4 << 20, 0)));
        let open_cached = |workers: usize| {
            CachedFile::new(
                Box::new(HttpFile::open(
                    store.addr(),
                    "data.paizone",
                    HttpOptions::default().with_fetch_workers(workers),
                ).unwrap()),
                shared.clone(),
            )
        };
        let cold = open_cached(1);
        let cached_seq = run_sequence_overlapped(&cold, &spec, &windows, phi, batch, 1);
        assert_overlap_equivalent(&http_seq, &cached_seq, 1);
        let cold_gets = cold.counters().http_requests();
        for workers in [2usize, 8] {
            let f = open_cached(workers);
            let ovl = run_sequence_overlapped(&f, &spec, &windows, phi, batch, workers);
            assert_overlap_equivalent(&http_seq, &ovl, workers);
            prop_assert!(
                f.counters().http_requests() <= cold_gets,
                "a warm worker={} run cannot out-fetch the cold one: {} vs {}",
                workers, f.counters().http_requests(), cold_gets
            );
            if cached_seq.objects_read > 0 {
                prop_assert!(
                    f.counters().cache_hits() > 0,
                    "warm worker={} run served spans from the shared cache", workers
                );
            }
        }
    }

    /// φ = 0 exercises full resolution: every candidate is processed under
    /// both modes, so the batched pipeline must also match a workload-level
    /// strict call reduction whenever multi-tile queries exist.
    #[test]
    fn prop_exact_mode_strictly_fewer_calls(
        rows in 400u64..900,
        seed in 5u64..10,
        batch in 2usize..6,
        w in window_strategy(),
    ) {
        let spec = dataset(rows, seed, 3);
        let csv = spec.build_mem(CsvFormat::default()).unwrap();
        let windows = [w];
        let seq = run_sequence(&csv, &spec, &windows, 0.0, 1);
        let batched = run_sequence(&csv, &spec, &windows, 0.0, batch);
        assert_batch_equivalent(&seq, &batched, batch);
        // Exact answering fully resolves the window either way.
        for (a, b) in seq.results.iter().zip(&batched.results) {
            prop_assert_eq!(a.error_bound, 0.0);
            prop_assert_eq!(b.error_bound, 0.0);
        }
    }
}
