//! Concurrency stress for the optimistic plan/fetch/apply path.
//!
//! Several writers adapt one `SharedIndex` over *overlapping* windows —
//! maximizing plan conflicts (a tile split by one writer while another
//! holds a fetched plan for it) — while readers hammer metadata estimates.
//! Every answer must stay sound: the deterministic CI contains the ground
//! truth no matter how the schedules interleave, and the index invariants
//! hold afterwards. A final test races the same writer/reader mix through
//! one *shared tiered block cache* with a deliberately tiny memory budget,
//! so admissions, LRU evictions, disk-spill demotions, and spill re-reads
//! interleave freely — truth containment proves no torn or misplaced
//! block ever reaches a query. Two server legs re-run the shared-cache
//! race *over the wire* through `PaiServer`'s session queues and worker
//! pool (every served answer truth-checked), and prove a client killed
//! mid-query costs the server nothing but a metered dropped reply. A
//! synopsis leg races zero-adaptation `estimate_synopsis` readers against
//! the same adapting writers: every estimate handed out mid-race must
//! still bound the ground truth.
//!
//! CI runs this suite in **release mode** as a dedicated step so
//! lock-ordering and optimistic-apply bugs surface under optimized timing,
//! not just the forgiving debug-build interleavings.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use pai_core::SharedIndex;
use pai_storage::ground_truth::window_truth;
use partial_adaptive_indexing::prelude::*;

fn build_shared(
    rows: u64,
    seed: u64,
    adapt_batch: usize,
    fetch_workers: usize,
) -> Arc<SharedIndex<MemFile>> {
    let spec = DatasetSpec {
        rows,
        columns: 4,
        seed,
        ..Default::default()
    };
    let file = spec.build_mem(CsvFormat::default()).unwrap();
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: 6, ny: 6 },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    let (index, _) = build(&file, &init).unwrap();
    let config = EngineConfig {
        adapt_batch,
        fetch_workers,
        ..EngineConfig::paper_evaluation()
    };
    Arc::new(SharedIndex::new(index, file, config).unwrap())
}

/// Truth-containment with endpoint slack for fully-resolved (point) CIs,
/// whose float merge order may differ from the sequential scan's.
fn ci_sound(ci: Option<Interval>, truth: f64) -> bool {
    match ci {
        Some(ci) => {
            ci.contains(truth)
                || (truth - ci.lo()).abs() < 1e-9 * (1.0 + ci.lo().abs())
                || (truth - ci.hi()).abs() < 1e-9 * (1.0 + ci.hi().abs())
        }
        None => false,
    }
}

/// The heart of the stress: N writers over overlapping windows + M readers,
/// all answers checked against precomputed ground truth.
fn stress(adapt_batch: usize, fetch_workers: usize, phi: f64, seed: u64) {
    let shared = build_shared(6000, seed, adapt_batch, fetch_workers);
    // Overlapping window ladder: every consecutive pair shares most of its
    // area, so writers constantly re-plan tiles their peers are splitting.
    let windows: Vec<Rect> = (0..6)
        .map(|i| {
            let off = i as f64 * 60.0;
            Rect::new(120.0 + off, 560.0 + off, 120.0 + off, 560.0 + off)
        })
        .collect();
    let truths: Vec<f64> = windows
        .iter()
        .map(|w| window_truth(shared.file(), w, &[2]).unwrap()[0].stats.sum())
        .collect();
    let aggs = [AggregateFunction::Sum(2)];
    let conflicts = AtomicU64::new(0);

    std::thread::scope(|s| {
        for writer in 0..4usize {
            let shared = Arc::clone(&shared);
            let (windows, truths, aggs) = (&windows, &truths, &aggs);
            let conflicts = &conflicts;
            s.spawn(move || {
                // Each writer walks the ladder from a different start, so
                // at any instant several writers work the same region.
                for step in 0..windows.len() * 2 {
                    let i = (writer + step) % windows.len();
                    let res = shared.evaluate(&windows[i], aggs, phi).unwrap();
                    assert!(res.met_constraint, "writer {writer} window {i}");
                    assert!(res.error_bound <= phi + 1e-12);
                    assert!(
                        ci_sound(res.cis[0], truths[i]),
                        "writer {writer} window {i}: CI {:?} lost truth {}",
                        res.cis[0],
                        truths[i]
                    );
                    conflicts.fetch_add(res.stats.plan_conflicts as u64, Ordering::Relaxed);
                }
            });
        }
        for _ in 0..4usize {
            let shared = Arc::clone(&shared);
            let (windows, aggs) = (&windows, &aggs);
            s.spawn(move || {
                for step in 0..60 {
                    let w = &windows[step % windows.len()];
                    let res = shared.estimate(w, aggs).unwrap();
                    // A metadata estimate's CI is sound at whatever
                    // adaptation state it observed.
                    assert!(res.error_bound >= 0.0);
                }
            });
        }
    });

    shared.with_index(|idx| idx.validate_invariants().unwrap());
    // After the dust settles, every window answers tightly from metadata.
    for (w, &t) in windows.iter().zip(&truths) {
        let res = shared.evaluate(w, &aggs, phi).unwrap();
        assert!(res.met_constraint);
        assert!(ci_sound(res.cis[0], t));
    }
    println!(
        "stress(batch={adapt_batch}, phi={phi}): {} plan conflicts absorbed",
        conflicts.load(Ordering::Relaxed)
    );
}

#[test]
fn writers_race_sequentially_batched() {
    stress(1, 1, 0.05, 17);
}

#[test]
fn writers_race_with_batched_pipeline() {
    stress(4, 1, 0.05, 23);
}

#[test]
fn writers_race_with_overlapped_fetch() {
    // Streamed fetch→apply: each writer's plans apply under per-plan write
    // locks while its own fetch workers still have reads in flight, so
    // optimistic re-checks race against both peers' splits and the
    // writer's own pipeline.
    stress(4, 8, 0.05, 37);
}

#[test]
fn writers_race_exact_answering() {
    // φ = 0: every contested tile must end fully resolved despite
    // conflicting plans; answers are exact.
    stress(3, 1, 0.0, 29);
}

#[test]
fn writers_race_over_one_shared_block_cache() {
    // One remote zone image, one shared cache whose memory tier holds only
    // a sliver of the working set (plus a disk-spill tier big enough for
    // everything): 4 writers adapt a SharedIndex over a cached file while
    // 2 readers run pruned truth scans through their *own* cached files
    // over the same cache. Admissions, evictions, demotions to disk, and
    // spill re-reads race constantly; every answer is checked against a
    // local-zone ground truth, so a torn block, a span served under the
    // wrong key, or a half-renamed spill file would surface as a wrong sum.
    let spec = DatasetSpec {
        rows: 12_000,
        columns: 4,
        seed: 41,
        ..Default::default()
    };
    let csv = spec.build_mem(CsvFormat::default()).unwrap();
    let image = convert_to_zone(&csv).unwrap();
    let zone = ZoneFile::from_bytes(image.clone()).unwrap();
    let store = ObjectStore::serve().unwrap();
    let mem_budget = (image.len() / 4) as u64;
    let disk_budget = 2 * image.len() as u64;
    store.put("stress.paizone", image);
    let spill = std::env::temp_dir().join(format!("pai-stress-spill-{}", std::process::id()));
    let cache = Arc::new(BlockCache::new(
        CacheConfig::new(mem_budget, disk_budget).with_spill_dir(spill.clone()),
    ));
    let open = || {
        CachedFile::new(
            Box::new(
                HttpFile::open(store.addr(), "stress.paizone", HttpOptions::default()).unwrap(),
            ),
            Arc::clone(&cache),
        )
    };

    let file = open();
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: 6, ny: 6 },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    let (index, _) = build(&file, &init).unwrap();
    let config = EngineConfig {
        adapt_batch: 4,
        fetch_workers: 4,
        ..EngineConfig::paper_evaluation()
    };
    let shared = Arc::new(SharedIndex::new(index, file, config).unwrap());

    let windows: Vec<Rect> = (0..6)
        .map(|i| {
            let off = i as f64 * 60.0;
            Rect::new(120.0 + off, 560.0 + off, 120.0 + off, 560.0 + off)
        })
        .collect();
    let truths: Vec<f64> = windows
        .iter()
        .map(|w| window_truth(&zone, w, &[2]).unwrap()[0].stats.sum())
        .collect();
    let aggs = [AggregateFunction::Sum(2)];

    std::thread::scope(|s| {
        for writer in 0..4usize {
            let shared = Arc::clone(&shared);
            let (windows, truths, aggs) = (&windows, &truths, &aggs);
            s.spawn(move || {
                for step in 0..windows.len() * 2 {
                    let i = (writer + step) % windows.len();
                    let res = shared.evaluate(&windows[i], aggs, 0.05).unwrap();
                    assert!(res.met_constraint, "writer {writer} window {i}");
                    assert!(
                        ci_sound(res.cis[0], truths[i]),
                        "writer {writer} window {i}: CI {:?} lost truth {} (cache corruption?)",
                        res.cis[0],
                        truths[i]
                    );
                }
            });
        }
        for reader in 0..2usize {
            let open = &open;
            let (windows, truths) = (&windows, &truths);
            s.spawn(move || {
                let f = open();
                for step in 0..windows.len() * 2 {
                    let i = (reader + step) % windows.len();
                    let t = window_truth(&f, &windows[i], &[2]).unwrap()[0].stats.sum();
                    assert_eq!(
                        t, truths[i],
                        "reader {reader} window {i}: torn or misplaced cached block"
                    );
                }
            });
        }
    });

    shared.with_index(|idx| idx.validate_invariants().unwrap());
    let c = shared.file().counters();
    assert!(c.cache_hits() > 0, "the shared cache actually served spans");
    assert!(
        cache.mem_used() <= mem_budget,
        "memory budget violated: {} > {mem_budget}",
        cache.mem_used()
    );
    assert!(
        cache.disk_used() > 0,
        "the sliver-sized memory tier must have demoted victims to disk"
    );
    // After the dust settles, answers are still sound through the cache.
    for (w, &t) in windows.iter().zip(&truths) {
        let res = shared.evaluate(w, &aggs, 0.05).unwrap();
        assert!(res.met_constraint);
        assert!(ci_sound(res.cis[0], t));
    }
    drop(shared);
    drop(cache);
    let _ = std::fs::remove_dir_all(&spill);
}

#[test]
fn served_sessions_race_adaptation_over_one_shared_cache() {
    // The server-shaped variant of the shared-cache race: N client
    // sessions drive adaptation through `PaiServer`'s worker pool — over
    // the wire, through the session queues and admission control — while
    // the same tiny-memory-tier cache absorbs the churn. Every *served*
    // answer is checked against a local-zone ground truth, so a scheduler
    // bug (lost reply, crossed session, torn frame) or a cache bug
    // surfaces as a wrong or missing sum.
    let spec = DatasetSpec {
        rows: 12_000,
        columns: 4,
        seed: 43,
        ..Default::default()
    };
    let csv = spec.build_mem(CsvFormat::default()).unwrap();
    let image = convert_to_zone(&csv).unwrap();
    let zone = ZoneFile::from_bytes(image.clone()).unwrap();
    let store = ObjectStore::serve().unwrap();
    let mem_budget = (image.len() / 4) as u64;
    let disk_budget = 2 * image.len() as u64;
    store.put("served.paizone", image);
    let spill = std::env::temp_dir().join(format!("pai-served-spill-{}", std::process::id()));
    let cache = Arc::new(BlockCache::new(
        CacheConfig::new(mem_budget, disk_budget).with_spill_dir(spill.clone()),
    ));
    let file = CachedFile::new(
        Box::new(HttpFile::open(store.addr(), "served.paizone", HttpOptions::default()).unwrap()),
        Arc::clone(&cache),
    );
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: 6, ny: 6 },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    let (index, _) = build(&file, &init).unwrap();
    let config = EngineConfig {
        adapt_batch: 4,
        fetch_workers: 4,
        ..EngineConfig::paper_evaluation()
    };
    let shared = Arc::new(pai_core::SharedIndex::new(index, file, config).unwrap());
    let mut server = PaiServer::serve(
        shared,
        ServerConfig {
            workers: 4,
            ..ServerConfig::default()
        },
    )
    .unwrap();
    let addr = server.addr();

    let windows: Vec<Rect> = (0..6)
        .map(|i| {
            let off = i as f64 * 60.0;
            Rect::new(120.0 + off, 560.0 + off, 120.0 + off, 560.0 + off)
        })
        .collect();
    let truths: Vec<f64> = windows
        .iter()
        .map(|w| window_truth(&zone, w, &[2]).unwrap()[0].stats.sum())
        .collect();
    let aggs = [AggregateFunction::Sum(2)];

    std::thread::scope(|s| {
        for client_id in 0..6usize {
            let (windows, truths, aggs) = (&windows, &truths, &aggs);
            s.spawn(move || {
                let session = format!("racer-{}", client_id % 3);
                let mut client = PaiClient::connect(addr, &session).unwrap();
                for step in 0..windows.len() * 2 {
                    let i = (client_id + step) % windows.len();
                    // Polite closed loop: admission control may push back
                    // under 6 racing sessions; retry until answered.
                    let answer = loop {
                        match client.query(&windows[i], aggs, 0.05).unwrap() {
                            ServedReply::Answer(a) => break a,
                            ServedReply::Busy => {
                                std::thread::sleep(std::time::Duration::from_micros(200))
                            }
                            ServedReply::ShuttingDown => panic!("premature drain"),
                        }
                    };
                    assert!(answer.met_constraint, "client {client_id} window {i}");
                    assert!(
                        ci_sound(answer.cis[0], truths[i]),
                        "client {client_id} window {i}: served CI {:?} lost truth {}",
                        answer.cis[0],
                        truths[i]
                    );
                }
            });
        }
    });

    let stats = server.stats();
    assert_eq!(stats.dropped_replies, 0, "every reply reached its client");
    assert_eq!(stats.errors, 0);
    assert!(stats.queries_served >= 6 * 12);
    server.shutdown();
    let c = cache.mem_used() + cache.disk_used();
    assert!(c > 0, "the shared cache actually absorbed blocks");
    assert!(
        cache.mem_used() <= mem_budget,
        "memory budget violated: {} > {mem_budget}",
        cache.mem_used()
    );
    drop(cache);
    let _ = std::fs::remove_dir_all(&spill);
}

#[test]
fn killed_client_mid_query_leaves_the_server_healthy() {
    // A client that fires a query and vanishes before reading the reply
    // must cost the server nothing: the worker's send fails, is metered
    // as a dropped reply, and every other session keeps getting sound
    // answers.
    let shared = build_shared(4000, 47, 2, 2);
    let window = Rect::new(150.0, 550.0, 150.0, 550.0);
    let truth = window_truth(shared.file(), &window, &[2]).unwrap()[0]
        .stats
        .sum();
    let aggs = [AggregateFunction::Sum(2)];
    let mut server = PaiServer::serve(
        shared,
        ServerConfig {
            workers: 1,
            ..ServerConfig::default()
        },
    )
    .unwrap();

    // Raw connections: handshake, fire one query each, drop without
    // reading the answer (simulating a killed client process).
    use pai_server::protocol::{Request, Response, PROTOCOL_VERSION};
    use pai_storage::netio::{write_frame, ConnBuf};
    for k in 0..4u64 {
        let mut stream = std::net::TcpStream::connect(server.addr()).unwrap();
        let hello = Request::Hello {
            version: PROTOCOL_VERSION,
            session: "doomed".into(),
        };
        write_frame(&mut stream, &hello.encode()).unwrap();
        let mut buf = ConnBuf::new();
        let frame = buf.read_frame(&mut stream).unwrap().unwrap();
        assert!(matches!(
            Response::decode(frame).unwrap(),
            Response::HelloOk { .. }
        ));
        let q = Request::Query {
            id: k,
            window,
            phi: 0.05,
            aggs: aggs.to_vec(),
        };
        write_frame(&mut stream, &q.encode()).unwrap();
        drop(stream); // killed mid-query: the reply has nowhere to go
    }

    // A surviving session still gets sound answers afterwards.
    let mut survivor = PaiClient::connect(server.addr(), "survivor").unwrap();
    for _ in 0..3 {
        let answer = loop {
            match survivor.query(&window, &aggs, 0.05).unwrap() {
                ServedReply::Answer(a) => break a,
                ServedReply::Busy => std::thread::sleep(std::time::Duration::from_micros(200)),
                ServedReply::ShuttingDown => panic!("premature drain"),
            }
        };
        assert!(answer.met_constraint);
        assert!(ci_sound(answer.cis[0], truth));
    }
    // The doomed queries were evaluated; their replies were dropped (a
    // racing TCP teardown may also surface as a queue-side error, but
    // nothing hangs and nothing is silently lost).
    let stats = server.stats();
    assert!(
        stats.dropped_replies + stats.errors > 0,
        "vanished clients must be visible in the meters"
    );
    server.shutdown();
}

#[test]
fn locked_and_pipelined_writers_interleave() {
    // The sequential-baseline protocol and the pipeline must compose: a
    // writer holding the whole-query write lock cannot corrupt plans made
    // by pipelined writers and vice versa.
    let shared = build_shared(4000, 31, 2, 4);
    let window_a = Rect::new(100.0, 600.0, 100.0, 600.0);
    let window_b = Rect::new(300.0, 800.0, 300.0, 800.0);
    let aggs = [AggregateFunction::Sum(2)];
    let truth_a = window_truth(shared.file(), &window_a, &[2]).unwrap()[0]
        .stats
        .sum();
    let truth_b = window_truth(shared.file(), &window_b, &[2]).unwrap()[0]
        .stats
        .sum();

    std::thread::scope(|s| {
        for _ in 0..2 {
            let pipelined = Arc::clone(&shared);
            s.spawn(move || {
                for _ in 0..6 {
                    let res = pipelined.evaluate(&window_a, &aggs, 0.05).unwrap();
                    assert!(ci_sound(res.cis[0], truth_a));
                }
            });
            let locked = Arc::clone(&shared);
            s.spawn(move || {
                for _ in 0..6 {
                    let res = locked.evaluate_locked(&window_b, &aggs, 0.05).unwrap();
                    assert!(ci_sound(res.cis[0], truth_b));
                }
            });
        }
    });
    shared.with_index(|idx| idx.validate_invariants().unwrap());
}

/// The ingest-while-explore race: appending writers stream delta batches
/// into a `SharedIndex` over a *cached remote* base while a 1 ms background
/// compactor re-clusters sealed delta runs, adapting evaluators refine the
/// same index, synopsis readers probe the zero-adaptation path (which must
/// cleanly refuse to answer over a mutating file), and an independent truth
/// reader scans the base through its own handle on the same sliver-budget
/// cache.
///
/// Soundness against the *final* row set is made checkable mid-race by
/// construction: every appended row carries `0.0` in the summed column, so
/// the Sum ground truth of the final row set equals the truth at every
/// intermediate state — any Sum CI handed out at any interleaving must
/// contain it. Counts grow monotonically batch by batch, so every Count CI
/// must intersect `[initial, final]`. After the dust settles, exact
/// (φ = 0) answers must hit the final counts and the invariant sums on the
/// nose.
#[test]
fn ingest_while_explore_race_stays_sound_over_one_shared_cache() {
    use pai_core::{compact_now, spawn_compactor, CompactorConfig};
    use pai_storage::AppendableFile;

    let spec = DatasetSpec {
        rows: 12_000,
        columns: 4,
        seed: 53,
        ..Default::default()
    };
    let csv = spec.build_mem(CsvFormat::default()).unwrap();
    let image = convert_to_zone(&csv).unwrap();
    let zone = ZoneFile::from_bytes(image.clone()).unwrap();
    let store = ObjectStore::serve().unwrap();
    let mem_budget = (image.len() / 4) as u64;
    let disk_budget = 2 * image.len() as u64;
    store.put("ingest-stress.paizone", image);
    let spill = std::env::temp_dir().join(format!("pai-ingest-spill-{}", std::process::id()));
    let cache = Arc::new(BlockCache::new(
        CacheConfig::new(mem_budget, disk_budget).with_spill_dir(spill.clone()),
    ));
    let open = || {
        CachedFile::new(
            Box::new(
                HttpFile::open(
                    store.addr(),
                    "ingest-stress.paizone",
                    HttpOptions::default(),
                )
                .unwrap(),
            ),
            Arc::clone(&cache),
        )
    };
    let file =
        AppendableFile::with_layout(open(), spec.rows, 256, SynopsisSpec::default()).unwrap();
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: 6, ny: 6 },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    let (index, _) = build(&file, &init).unwrap();
    let config = EngineConfig {
        synopsis: true,
        adapt_batch: 4,
        fetch_workers: 4,
        ..EngineConfig::paper_evaluation()
    };
    let shared = Arc::new(SharedIndex::new(index, file, config).unwrap());
    let compactor = spawn_compactor(
        Arc::clone(&shared),
        CompactorConfig {
            min_run: 2,
            interval: std::time::Duration::from_millis(1),
        },
    );

    // The deterministic delta stream: 2 writers × 8 batches × 128 rows,
    // scattered on both axes, summed column pinned to 0.0 (see above).
    const WRITERS: usize = 2;
    const BATCHES: usize = 8;
    const BATCH_ROWS: usize = 128;
    let delta_batch = |writer: usize, batch: usize| -> Vec<Vec<f64>> {
        (0..BATCH_ROWS)
            .map(|i| {
                let k = (writer * BATCHES + batch) * BATCH_ROWS + i;
                let x = ((k * 37 + 11) % 1000) as f64 + 0.5;
                let y = ((k * 73 + 29) % 1000) as f64 + 0.5;
                vec![x, y, 0.0, 1.0 + k as f64]
            })
            .collect()
    };
    let total_appended = (WRITERS * BATCHES * BATCH_ROWS) as u64;

    let windows: Vec<Rect> = (0..6)
        .map(|i| {
            let off = i as f64 * 60.0;
            Rect::new(120.0 + off, 560.0 + off, 120.0 + off, 560.0 + off)
        })
        .collect();
    // Sum truth is append-invariant; counts are bracketed per window.
    let truths: Vec<(u64, u64, f64)> = windows
        .iter()
        .map(|w| {
            let t = &window_truth(&zone, w, &[2]).unwrap()[0];
            let appended: u64 = (0..WRITERS)
                .flat_map(|wr| (0..BATCHES).map(move |b| (wr, b)))
                .flat_map(|(wr, b)| delta_batch(wr, b))
                .filter(|row| w.contains_point(Point2::new(row[0], row[1])))
                .count() as u64;
            (t.selected, t.selected + appended, t.stats.sum())
        })
        .collect();
    let aggs = [AggregateFunction::Count, AggregateFunction::Sum(2)];
    let slack = |x: f64| 1e-9 * (1.0 + x.abs());
    let synopsis_probes = AtomicU64::new(0);

    std::thread::scope(|s| {
        for writer in 0..WRITERS {
            let shared = Arc::clone(&shared);
            s.spawn(move || {
                for batch in 0..BATCHES {
                    let rows = delta_batch(writer, batch);
                    let receipt = shared.ingest(&rows).unwrap();
                    assert_eq!(receipt.locators.len(), BATCH_ROWS, "appender {writer}");
                }
            });
        }
        for evaluator in 0..3usize {
            let shared = Arc::clone(&shared);
            let (windows, truths, aggs) = (&windows, &truths, &aggs);
            s.spawn(move || {
                for step in 0..windows.len() * 2 {
                    let i = (evaluator + step) % windows.len();
                    let (lo, hi, sum) = truths[i];
                    let res = shared.evaluate(&windows[i], aggs, 0.05).unwrap();
                    assert!(res.met_constraint, "evaluator {evaluator} window {i}");
                    let count_ci = res.cis[0].expect("count CI");
                    assert!(
                        count_ci.hi() >= lo as f64 - slack(lo as f64)
                            && count_ci.lo() <= hi as f64 + slack(hi as f64),
                        "evaluator {evaluator} window {i}: count CI {count_ci:?} \
                         outside [{lo}, {hi}]"
                    );
                    assert!(
                        ci_sound(res.cis[1], sum),
                        "evaluator {evaluator} window {i}: sum CI {:?} lost the \
                         append-invariant truth {sum}",
                        res.cis[1]
                    );
                }
            });
        }
        // Synopsis readers: over a *mutating* file the synopsis path must
        // refuse to answer (`block_synopses` is `None` by contract — a
        // base-only synopsis answer would silently drop appended rows), and
        // the refusal must stay clean under full writer/compactor churn.
        for reader in 0..2usize {
            let shared = Arc::clone(&shared);
            let (windows, probed) = (&windows, &synopsis_probes);
            s.spawn(move || {
                for step in 0..windows.len() * 3 {
                    let i = (reader + step) % windows.len();
                    let res = shared
                        .estimate_synopsis(&windows[i], &[AggregateFunction::Count])
                        .unwrap();
                    assert!(
                        res.is_none(),
                        "synopsis reader {reader} window {i}: a synopsis-built \
                         answer over a mutating file would drop appended rows"
                    );
                    probed.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        // Base-integrity reader: pruned truth scans of the *base* through an
        // independent handle on the same cache must keep seeing the original
        // rows exactly, while compactions invalidate and writers churn it.
        {
            let open = &open;
            let (windows, truths) = (&windows, &truths);
            s.spawn(move || {
                let f = open();
                for step in 0..windows.len() * 2 {
                    let i = step % windows.len();
                    let t = &window_truth(&f, &windows[i], &[2]).unwrap()[0];
                    assert_eq!(
                        (t.selected, t.stats.sum()),
                        (truths[i].0, truths[i].2),
                        "base reader window {i}: torn or misplaced cached block"
                    );
                }
            });
        }
    });

    let stats = compactor.stop();
    assert_eq!(stats.errors, 0, "compactor passes must never fail");
    // Leave the delta store fully compacted; whether the background thread
    // or this call did the last rewrite is timing, but *someone* compacted.
    compact_now(&shared, 1).unwrap();
    let io = shared.file().counters().snapshot();
    assert_eq!(io.rows_ingested, total_appended);
    assert!(
        io.compactions >= 1,
        "the delta store was never re-clustered"
    );
    shared.with_index(|idx| idx.validate_invariants().unwrap());

    // Quiesced: exact answers must hit the final row set on the nose.
    for (w, &(_, final_count, sum)) in windows.iter().zip(&truths) {
        let res = shared.evaluate(w, &aggs, 0.0).unwrap();
        assert_eq!(res.values[0], AggregateValue::Count(final_count));
        let got = res.values[1].as_f64().unwrap();
        assert!(
            (got - sum).abs() <= slack(sum),
            "final sum {got} drifted from {sum}"
        );
    }
    assert!(
        shared.file().counters().cache_hits() > 0,
        "the shared cache actually served spans"
    );
    assert!(
        cache.mem_used() <= mem_budget,
        "memory budget violated: {} > {mem_budget}",
        cache.mem_used()
    );
    assert!(
        synopsis_probes.load(Ordering::Relaxed) > 0,
        "the synopsis readers actually probed mid-race"
    );
    println!(
        "ingest race: {} synopsis probes mid-race, {} compactor passes, {} compactions",
        synopsis_probes.load(Ordering::Relaxed),
        stats.passes,
        io.compactions
    );
    drop(shared);
    drop(cache);
    let _ = std::fs::remove_dir_all(&spill);
}

/// Synopsis readers race writers adapting the same `SharedIndex`: every
/// zero-adaptation estimate handed out mid-race must still bound the
/// ground truth. The synopsis path folds block moments against a snapshot
/// of the *live* index's exact selected counts, so a stale or torn view of
/// a tile being split concurrently would surface as a CI that lost the
/// truth. Runs over the remote zone image through a sliver-sized shared
/// block cache, so the writers churn the cache at the same time.
#[test]
fn synopsis_readers_stay_sound_while_writers_adapt() {
    let spec = DatasetSpec {
        rows: 12_000,
        columns: 4,
        seed: 47,
        ..Default::default()
    };
    let csv = spec.build_mem(CsvFormat::default()).unwrap();
    let image = convert_to_zone(&csv).unwrap();
    let zone = ZoneFile::from_bytes(image.clone()).unwrap();
    let store = ObjectStore::serve().unwrap();
    let mem_budget = (image.len() / 4) as u64;
    let disk_budget = 2 * image.len() as u64;
    store.put("synopsis-stress.paizone", image);
    let spill = std::env::temp_dir().join(format!("pai-syn-spill-{}", std::process::id()));
    let cache = Arc::new(BlockCache::new(
        CacheConfig::new(mem_budget, disk_budget).with_spill_dir(spill.clone()),
    ));
    let file = CachedFile::new(
        Box::new(
            HttpFile::open(
                store.addr(),
                "synopsis-stress.paizone",
                HttpOptions::default(),
            )
            .unwrap(),
        ),
        Arc::clone(&cache),
    );
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: 6, ny: 6 },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    let (index, _) = build(&file, &init).unwrap();
    let config = EngineConfig {
        synopsis: true,
        adapt_batch: 4,
        fetch_workers: 4,
        ..EngineConfig::paper_evaluation()
    };
    let shared = Arc::new(SharedIndex::new(index, file, config).unwrap());

    let windows: Vec<Rect> = (0..6)
        .map(|i| {
            let off = i as f64 * 60.0;
            Rect::new(120.0 + off, 560.0 + off, 120.0 + off, 560.0 + off)
        })
        .collect();
    let aggs = [AggregateFunction::Count, AggregateFunction::Sum(2)];
    let truths: Vec<(f64, f64)> = windows
        .iter()
        .map(|w| {
            let t = &window_truth(&zone, w, &[2]).unwrap()[0];
            (t.selected as f64, t.stats.sum())
        })
        .collect();

    let answered = AtomicU64::new(0);
    std::thread::scope(|s| {
        for writer in 0..4usize {
            let shared = Arc::clone(&shared);
            let (windows, truths, aggs) = (&windows, &truths, &aggs);
            s.spawn(move || {
                for step in 0..windows.len() * 2 {
                    let i = (writer + step) % windows.len();
                    let res = shared.evaluate(&windows[i], aggs, 0.05).unwrap();
                    assert!(res.met_constraint, "writer {writer} window {i}");
                    assert!(
                        ci_sound(res.cis[0], truths[i].0),
                        "writer {writer} window {i}: count CI {:?} lost {}",
                        res.cis[0],
                        truths[i].0
                    );
                    assert!(
                        ci_sound(res.cis[1], truths[i].1),
                        "writer {writer} window {i}: sum CI {:?} lost {}",
                        res.cis[1],
                        truths[i].1
                    );
                }
            });
        }
        for reader in 0..3usize {
            let shared = Arc::clone(&shared);
            let (windows, truths, aggs, answered) = (&windows, &truths, &aggs, &answered);
            s.spawn(move || {
                for step in 0..windows.len() * 3 {
                    let i = (reader + step) % windows.len();
                    // The explicit zero-adaptation reader entry: whatever
                    // index state it snapshots mid-race, a handed-out
                    // estimate must bound the truth.
                    if let Some(res) = shared.estimate_synopsis(&windows[i], aggs).unwrap() {
                        assert!(
                            ci_sound(res.cis[0], truths[i].0),
                            "reader {reader} window {i}: count CI {:?} lost {}",
                            res.cis[0],
                            truths[i].0
                        );
                        assert!(
                            ci_sound(res.cis[1], truths[i].1),
                            "reader {reader} window {i}: sum CI {:?} lost {}",
                            res.cis[1],
                            truths[i].1
                        );
                        answered.fetch_add(1, Ordering::Relaxed);
                    }
                }
            });
        }
    });

    assert!(
        answered.load(Ordering::Relaxed) > 0,
        "the synopsis path answered at least once mid-race"
    );
    assert!(
        shared.file().counters().synopsis_hits() > 0,
        "synopsis consultations must be metered"
    );
    shared.with_index(|idx| idx.validate_invariants().unwrap());
    // After the dust settles the adaptive path still meets its constraint.
    for (w, &(count, sum)) in windows.iter().zip(&truths) {
        let res = shared.evaluate(w, &aggs, 0.05).unwrap();
        assert!(res.met_constraint);
        assert!(ci_sound(res.cis[0], count) && ci_sound(res.cis[1], sum));
    }
    drop(shared);
    drop(cache);
    let _ = std::fs::remove_dir_all(&spill);
}
