//! Cost-estimate regression gate: `predict_query_io` must track metered I/O.
//!
//! Before any evaluation, [`pai_core::predict_query_io`] prices an exact
//! (`φ = 0`) drive of a query against the current index state using only
//! the classification's exact selected counts and the backend's per-value
//! size hint — no file access. These tests pin how tightly that prediction
//! tracks the real meters per backend:
//!
//! * **PaiBin** — fixed 8-byte values, run-coalesced exact reads: the
//!   prediction is *exact* in both objects and bytes;
//! * **PaiZone / HTTP** — bit-packed blocks priced at the file's mean bits
//!   per value: objects exact, bytes within a relative tolerance (per-block
//!   widths vary around the mean, and packed runs carry byte-alignment
//!   padding);
//! * **CSV** — objects exact, bytes priced at the mean row length, so a
//!   small tolerance absorbs row-length variance;
//! * an accuracy-constrained run (`φ > 0`) stops early, so on the
//!   exactly-priced backend the prediction is a hard upper bound.
//!
//! The `predicted_bytes` report column exposes the same prediction per
//! query; `tests/workload_suite.rs` pins its CSV plumbing.

use pai_core::{predict_query_io, IoPrediction};
use partial_adaptive_indexing::prelude::*;

fn spec() -> DatasetSpec {
    DatasetSpec {
        rows: 9_000,
        columns: 4,
        seed: 21,
        ..Default::default()
    }
}

/// An exploration ladder: overlapping pans so later queries hit a mix of
/// already-refined and fresh tiles — the prediction must stay honest as the
/// index state it prices keeps changing.
fn windows() -> Vec<Rect> {
    (0..6)
        .map(|i| {
            let off = 70.0 * i as f64;
            Rect::new(80.0 + off, 520.0 + off, 60.0 + off, 480.0 + off)
        })
        .collect()
}

/// Predicts each query's I/O immediately before evaluating it at the given
/// φ; returns `(prediction, metered_objects, metered_bytes)` per query.
fn run_predicted(file: &dyn RawFile, phi: f64) -> Vec<(IoPrediction, u64, u64)> {
    let spec = spec();
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: 6, ny: 6 },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    let (index, _) = build(file, &init).expect("init");
    let cfg = EngineConfig::paper_evaluation();
    let mut engine = ApproximateEngine::new(index, file, cfg.clone()).expect("engine");
    let aggs = [AggregateFunction::Sum(2), AggregateFunction::Mean(2)];
    file.counters().reset();
    windows()
        .iter()
        .map(|w| {
            let p = predict_query_io(engine.index(), file, w, &aggs, &cfg).expect("predict");
            let before = file.counters().snapshot();
            engine.evaluate(w, &aggs, phi).expect("evaluate");
            let after = file.counters().snapshot().since(&before);
            (p, after.objects_read, after.bytes_read)
        })
        .collect()
}

#[test]
fn bin_prediction_is_exact() {
    let csv = spec().build_mem(CsvFormat::default()).unwrap();
    let bin = BinFile::from_bytes(convert_to_bin(&csv).unwrap()).unwrap();
    let runs = run_predicted(&bin, 0.0);
    assert!(runs.iter().any(|(_, o, _)| *o > 0), "the ladder read data");
    for (i, (p, objects, bytes)) in runs.iter().enumerate() {
        assert_eq!(p.objects, *objects, "query {i}: predicted objects");
        assert_eq!(p.bytes, *bytes, "query {i}: predicted bytes");
    }
}

#[test]
fn zone_and_http_predictions_track_metered_bytes() {
    let csv = spec().build_mem(CsvFormat::default()).unwrap();
    let image = convert_to_zone(&csv).unwrap();
    let zone = ZoneFile::from_bytes(image.clone()).unwrap();
    let store = ObjectStore::serve().unwrap();
    store.put("cost.paizone", image);
    let http = HttpFile::open(store.addr(), "cost.paizone", HttpOptions::default()).unwrap();

    for (label, file) in [("zone", &zone as &dyn RawFile), ("http", &http)] {
        let runs = run_predicted(file, 0.0);
        for (i, (p, objects, bytes)) in runs.iter().enumerate() {
            assert_eq!(p.objects, *objects, "{label} query {i}: predicted objects");
            // Mean-width pricing vs per-block widths + byte-aligned packed
            // runs: generous relative tolerance, but never order-of-magnitude
            // drift.
            let (pb, mb) = (p.bytes as f64, *bytes as f64);
            assert!(
                (pb - mb).abs() <= 0.35 * mb + 1024.0,
                "{label} query {i}: predicted {pb} vs metered {mb}"
            );
        }
    }
    assert!(
        http.counters().http_requests() > 0,
        "the http leg actually went over the wire"
    );
}

#[test]
fn csv_prediction_tracks_mean_row_pricing() {
    let csv = spec().build_mem(CsvFormat::default()).unwrap();
    let runs = run_predicted(&csv, 0.0);
    for (i, (p, objects, bytes)) in runs.iter().enumerate() {
        assert_eq!(p.objects, *objects, "csv query {i}: predicted objects");
        let (pb, mb) = (p.bytes as f64, *bytes as f64);
        assert!(
            (pb - mb).abs() <= 0.02 * mb + 64.0,
            "csv query {i}: predicted {pb} vs metered {mb}"
        );
    }
}

#[test]
fn prediction_is_an_upper_bound_for_accuracy_runs() {
    // φ > 0 stops refining early; on the exactly-priced backend the
    // prediction must therefore never under-estimate.
    let csv = spec().build_mem(CsvFormat::default()).unwrap();
    let bin = BinFile::from_bytes(convert_to_bin(&csv).unwrap()).unwrap();
    let runs = run_predicted(&bin, 0.05);
    let mut stopped_early = false;
    for (i, (p, objects, bytes)) in runs.iter().enumerate() {
        assert!(
            *objects <= p.objects,
            "query {i}: metered objects {objects} exceed prediction {}",
            p.objects
        );
        assert!(
            *bytes <= p.bytes,
            "query {i}: metered bytes {bytes} exceed prediction {}",
            p.bytes
        );
        stopped_early |= *objects < p.objects;
    }
    assert!(
        stopped_early,
        "at φ = 5% some query should stop before exact refinement"
    );
}
