//! End-to-end integration: raw file on disk → index → both engines →
//! answers checked against full-scan ground truth.

use pai_core::verify::verify_against_truth;
use pai_storage::ground_truth::window_truth;
use partial_adaptive_indexing::prelude::*;

fn temp_csv(name: &str, spec: &DatasetSpec) -> CsvFile {
    let dir = std::env::temp_dir().join("pai_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(name);
    spec.write_csv(&path, CsvFormat::default()).unwrap()
}

fn init_cfg(spec: &DatasetSpec, n: usize) -> InitConfig {
    InitConfig {
        grid: GridSpec::Fixed { nx: n, ny: n },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    }
}

#[test]
fn on_disk_exact_engine_matches_ground_truth() {
    let spec = DatasetSpec {
        rows: 20_000,
        columns: 5,
        seed: 101,
        ..Default::default()
    };
    let file = temp_csv("e2e_exact.csv", &spec);
    let (index, report) = build(&file, &init_cfg(&spec, 8)).unwrap();
    assert_eq!(report.rows, 20_000);

    let mut engine = ExactEngine::new(index, &file, AdaptConfig::default()).unwrap();
    let windows = [
        Rect::new(100.0, 400.0, 100.0, 400.0),
        Rect::new(350.0, 700.0, 200.0, 900.0),
        Rect::new(0.0, 1000.0, 0.0, 1000.0),
        Rect::new(900.0, 999.0, 900.0, 999.0),
    ];
    for w in &windows {
        let res = engine
            .evaluate(
                w,
                &[
                    AggregateFunction::Count,
                    AggregateFunction::Sum(2),
                    AggregateFunction::Mean(3),
                    AggregateFunction::Min(4),
                    AggregateFunction::Max(4),
                ],
            )
            .unwrap();
        let truth = window_truth(&file, w, &[2, 3, 4]).unwrap();
        assert_eq!(
            res.values[0],
            AggregateValue::Count(truth[0].selected),
            "{w}"
        );
        if truth[0].selected > 0 {
            let sum = res.values[1].as_f64().unwrap();
            assert!((sum - truth[0].stats.sum()).abs() < 1e-6 * (1.0 + sum.abs()));
            let mean = res.values[2].as_f64().unwrap();
            assert!((mean - truth[1].stats.mean().unwrap()).abs() < 1e-9);
            assert_eq!(res.values[3].as_f64(), truth[2].stats.min());
            assert_eq!(res.values[4].as_f64(), truth[2].stats.max());
        }
    }
    engine.index().validate_invariants().unwrap();
}

#[test]
fn on_disk_approximate_engine_guarantees_hold() {
    let spec = DatasetSpec {
        rows: 30_000,
        columns: 4,
        seed: 202,
        ..Default::default()
    };
    let file = temp_csv("e2e_approx.csv", &spec);
    let (index, _) = build(&file, &init_cfg(&spec, 10)).unwrap();
    let mut engine =
        ApproximateEngine::new(index, &file, EngineConfig::paper_evaluation()).unwrap();

    let aggs = [
        AggregateFunction::Count,
        AggregateFunction::Sum(2),
        AggregateFunction::Mean(2),
        AggregateFunction::Min(3),
        AggregateFunction::Max(3),
    ];
    let start = Workload::centered_window(&spec.domain, 0.03);
    let workload = Workload::shifted_sequence(&spec.domain, start, 15, aggs.to_vec(), 77);
    for (i, q) in workload.queries.iter().enumerate() {
        let phi = [0.01, 0.05, 0.1][i % 3];
        let res = engine.evaluate(&q.window, &q.aggs, phi).unwrap();
        assert!(res.met_constraint, "query {i} phi {phi}");
        let report =
            verify_against_truth(&file, &q.window, &q.aggs, &res, NormalizationMode::Estimate)
                .unwrap();
        assert!(report.all_ok(), "query {i}: {report:?}");
    }
    engine.index().validate_invariants().unwrap();
}

#[test]
fn parallel_and_serial_init_answer_identically() {
    let spec = DatasetSpec {
        rows: 15_000,
        columns: 4,
        seed: 303,
        ..Default::default()
    };
    let file = temp_csv("e2e_parallel.csv", &spec);
    let cfg = init_cfg(&spec, 6);
    let (serial, _) = build(&file, &cfg).unwrap();
    let (parallel, _) = build_parallel(&file, &cfg, 4).unwrap();

    let window = Rect::new(200.0, 700.0, 150.0, 650.0);
    let aggs = [AggregateFunction::Sum(2), AggregateFunction::Count];
    let mut e1 = ApproximateEngine::new(serial, &file, EngineConfig::paper_evaluation()).unwrap();
    let mut e2 = ApproximateEngine::new(parallel, &file, EngineConfig::paper_evaluation()).unwrap();
    let r1 = e1.evaluate(&window, &aggs, 0.05).unwrap();
    let r2 = e2.evaluate(&window, &aggs, 0.05).unwrap();
    // Same classification and metadata -> same counts; sums agree to
    // floating-point merge order.
    assert_eq!(r1.values[1], r2.values[1]);
    let (s1, s2) = (
        r1.values[0].as_f64().unwrap(),
        r2.values[0].as_f64().unwrap(),
    );
    assert!((s1 - s2).abs() < 1e-6 * (1.0 + s1.abs()));
}

#[test]
fn approximate_engine_never_reads_more_than_exact() {
    let spec = DatasetSpec {
        rows: 25_000,
        columns: 4,
        seed: 404,
        ..Default::default()
    };
    let file = temp_csv("e2e_io.csv", &spec);
    let aggs = vec![AggregateFunction::Mean(2)];
    let start = Workload::centered_window(&spec.domain, 0.02);
    let workload = Workload::shifted_sequence(&spec.domain, start, 20, aggs, 55);

    let runs = pai_query::compare_methods(
        &file,
        &init_cfg(&spec, 8),
        &EngineConfig::paper_evaluation(),
        &workload,
        &[
            Method::Exact,
            Method::Approx { phi: 0.01 },
            Method::Approx { phi: 0.05 },
        ],
    )
    .unwrap();
    let exact_io = runs[0].total_objects_read();
    let io_1 = runs[1].total_objects_read();
    let io_5 = runs[2].total_objects_read();
    assert!(
        io_1 <= exact_io,
        "1% should not out-read exact: {io_1} vs {exact_io}"
    );
    assert!(io_5 <= io_1, "5% should not out-read 1%: {io_5} vs {io_1}");
    assert!(io_5 < exact_io, "5% must save I/O on a fresh index");
}

#[test]
fn headerless_and_custom_delimiter_files_work() {
    let spec = DatasetSpec {
        rows: 2_000,
        columns: 3,
        seed: 505,
        ..Default::default()
    };
    let dir = std::env::temp_dir().join("pai_integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("e2e_headerless.csv");
    let fmt = CsvFormat {
        delimiter: b';',
        has_header: false,
        quote: b'"',
    };
    let file = spec.write_csv(&path, fmt).unwrap();
    let (index, report) = build(&file, &init_cfg(&spec, 4)).unwrap();
    assert_eq!(report.rows, 2_000);
    let mut engine =
        ApproximateEngine::new(index, &file, EngineConfig::paper_evaluation()).unwrap();
    let window = Rect::new(100.0, 900.0, 100.0, 900.0);
    let res = engine
        .evaluate(&window, &[AggregateFunction::Sum(2)], 0.05)
        .unwrap();
    let truth = window_truth(&file, &window, &[2]).unwrap();
    assert!(res.cis[0].unwrap().contains(truth[0].stats.sum()));
}

#[test]
fn discovered_domain_round_trip() {
    let spec = DatasetSpec {
        rows: 5_000,
        columns: 3,
        seed: 606,
        ..Default::default()
    };
    let file = temp_csv("e2e_discover.csv", &spec);
    let cfg = InitConfig {
        grid: GridSpec::TargetObjectsPerTile(200),
        domain: None, // force discovery pre-pass
        metadata: MetadataPolicy::AllNumeric,
    };
    let (index, report) = build(&file, &cfg).unwrap();
    assert!(report.discovered_domain);
    assert!(report.grid_nx >= 5, "5000/200 = 25 cells -> 5x5 grid");
    assert_eq!(index.total_objects(), 5_000);
    index.validate_invariants().unwrap();
}
