//! Backend-equivalence properties: the engine must not be able to tell the
//! storage backends apart — except through the I/O meters.
//!
//! For generated datasets, the CSV representation and its binary columnar
//! conversion must yield, under the same configuration and query sequence:
//!   1. identical approximate answers and error bounds;
//!   2. the same adaptation trajectory (tiles processed/split, objects
//!      read, final leaf count);
//!   3. fewer (or equal) bytes read on the binary backend — strictly fewer
//!      whenever the workload actually reads objects.
//!
//! Both backends scan rows in the same order and round-trip `f64` values
//! bit-exactly (CSV via shortest-repr printing, PaiBin natively), so the
//! comparisons below are exact, not approximate.

use partial_adaptive_indexing::prelude::*;
use proptest::prelude::*;

fn dataset(rows: u64, seed: u64, columns: usize) -> DatasetSpec {
    DatasetSpec {
        rows,
        columns,
        seed,
        ..Default::default()
    }
}

fn window_strategy() -> impl Strategy<Value = Rect> {
    (0.0f64..800.0, 0.0f64..800.0, 50.0f64..700.0, 50.0f64..700.0)
        .prop_map(|(x0, y0, w, h)| Rect::new(x0, (x0 + w).min(1000.0), y0, (y0 + h).min(1000.0)))
}

/// Runs the same window sequence on one backend; returns per-query results
/// plus the I/O meters and final index shape.
#[allow(clippy::type_complexity)]
fn run_sequence(
    file: &dyn RawFile,
    spec: &DatasetSpec,
    grid: usize,
    windows: &[Rect],
    phi: f64,
) -> (Vec<ApproxResult>, u64, u64, usize) {
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: grid, ny: grid },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    let (index, _) = build(file, &init).expect("init");
    let mut engine =
        ApproximateEngine::new(index, file, EngineConfig::paper_evaluation()).expect("engine");
    file.counters().reset();
    let aggs = [
        AggregateFunction::Count,
        AggregateFunction::Sum(2),
        AggregateFunction::Mean(2),
    ];
    let results: Vec<ApproxResult> = windows
        .iter()
        .map(|w| engine.evaluate(w, &aggs, phi).expect("evaluate"))
        .collect();
    let objects = file.counters().objects_read();
    let bytes = file.counters().bytes_read();
    let leaves = engine.index().leaf_count();
    (results, objects, bytes, leaves)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Query-result and adaptation-trajectory equivalence between the CSV
    /// backend and its binary conversion, plus the byte advantage.
    #[test]
    fn prop_backends_equivalent(
        rows in 200u64..900,
        seed in 0u64..5,
        grid in 3usize..7,
        phi in prop_oneof![Just(0.0), 0.01f64..0.2],
        w1 in window_strategy(),
        w2 in window_strategy(),
        w3 in window_strategy(),
    ) {
        let spec = dataset(rows, seed, 4);
        let csv = spec.build_mem(CsvFormat::default()).unwrap();
        // Convert the *CSV file* (not the generator) so the converter path
        // itself is under test.
        let bin = BinFile::from_bytes(convert_to_bin(&csv).unwrap()).unwrap();
        prop_assert_eq!(bin.n_rows(), rows);

        let windows = [w1, w2, w3];
        let (rc, co, cb, cl) = run_sequence(&csv, &spec, grid, &windows, phi);
        let (rb, bo, bb, bl) = run_sequence(&bin, &spec, grid, &windows, phi);

        for (i, (c, b)) in rc.iter().zip(&rb).enumerate() {
            for (cv, bv) in c.values.iter().zip(&b.values) {
                prop_assert_eq!(cv.as_f64(), bv.as_f64(), "query {} answer", i);
            }
            for (cc, bc) in c.cis.iter().zip(&b.cis) {
                prop_assert_eq!(cc, bc, "query {} CI", i);
            }
            prop_assert_eq!(c.error_bound, b.error_bound, "query {} bound", i);
            prop_assert_eq!(
                c.stats.tiles_processed, b.stats.tiles_processed,
                "query {} trajectory", i
            );
            prop_assert_eq!(c.stats.tiles_split, b.stats.tiles_split, "query {} splits", i);
            prop_assert_eq!(c.stats.selected, b.stats.selected, "query {} selection", i);
        }
        // Same splits in, same tree out.
        prop_assert_eq!(cl, bl, "final leaf counts must match");
        prop_assert_eq!(co, bo, "object meters must match");
        // The tentpole claim: binary positional reads are never more
        // expensive in bytes, and strictly cheaper once anything is read.
        prop_assert!(bb <= cb, "bin bytes {} > csv bytes {}", bb, cb);
        if co > 0 {
            prop_assert!(bb < cb, "expected a strict byte advantage: {} vs {}", bb, cb);
        }
    }

    /// Ground truth is backend-independent: a full scan of the conversion
    /// sees exactly the rows the CSV scan sees.
    #[test]
    fn prop_conversion_preserves_ground_truth(
        rows in 100u64..500,
        seed in 0u64..5,
        window in window_strategy(),
    ) {
        let spec = dataset(rows, seed, 3);
        let csv = spec.build_mem(CsvFormat::default()).unwrap();
        let bin = BinFile::from_bytes(convert_to_bin(&csv).unwrap()).unwrap();
        let tc = pai_storage::ground_truth::window_truth(&csv, &window, &[2]).unwrap();
        let tb = pai_storage::ground_truth::window_truth(&bin, &window, &[2]).unwrap();
        prop_assert_eq!(tc[0].selected, tb[0].selected);
        prop_assert_eq!(tc[0].stats.sum(), tb[0].stats.sum());
        prop_assert_eq!(tc[0].stats.min(), tb[0].stats.min());
        prop_assert_eq!(tc[0].stats.max(), tb[0].stats.max());
    }
}
