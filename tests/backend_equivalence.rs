//! Backend-equivalence properties: the engine must not be able to tell the
//! storage backends apart — except through the I/O meters.
//!
//! For generated datasets, the CSV representation, its binary columnar
//! (`PaiBin`) and zone-mapped compressed (`PaiZone`) conversions, and the
//! zone image served over HTTP ranged GETs (`HttpFile`) must yield, under
//! the same configuration and query sequence:
//!   1. identical approximate answers and error bounds;
//!   2. the same adaptation trajectory (tiles processed/split, objects
//!      read, final leaf count);
//!   3. fewer (or equal) bytes read on the binary backends — strictly
//!      fewer whenever the workload actually reads objects — and, on
//!      spatially clustered layouts, strictly fewer bytes *and blocks* on
//!      `PaiZone` than on `PaiBin` (zone-map pushdown).
//!
//! All backends scan rows in the same order and round-trip `f64` values
//! bit-exactly (CSV via shortest-repr printing, PaiBin/PaiZone natively),
//! so the comparisons below are exact, not approximate.

use partial_adaptive_indexing::prelude::*;
use proptest::prelude::*;

fn dataset(rows: u64, seed: u64, columns: usize) -> DatasetSpec {
    DatasetSpec {
        rows,
        columns,
        seed,
        ..Default::default()
    }
}

fn window_strategy() -> impl Strategy<Value = Rect> {
    (0.0f64..800.0, 0.0f64..800.0, 50.0f64..700.0, 50.0f64..700.0)
        .prop_map(|(x0, y0, w, h)| Rect::new(x0, (x0 + w).min(1000.0), y0, (y0 + h).min(1000.0)))
}

/// Runs the same window sequence on one backend; returns per-query results
/// plus the I/O meters and final index shape.
#[allow(clippy::type_complexity)]
fn run_sequence(
    file: &dyn RawFile,
    spec: &DatasetSpec,
    grid: usize,
    windows: &[Rect],
    phi: f64,
) -> (Vec<ApproxResult>, u64, u64, usize) {
    run_sequence_with(
        file,
        spec,
        grid,
        windows,
        phi,
        MetadataPolicy::AllNumeric,
        false,
    )
}

/// [`run_sequence`] with the initialization metadata policy and the
/// synopsis-first evaluation path under the caller's control.
#[allow(clippy::type_complexity)]
fn run_sequence_with(
    file: &dyn RawFile,
    spec: &DatasetSpec,
    grid: usize,
    windows: &[Rect],
    phi: f64,
    metadata: MetadataPolicy,
    synopsis: bool,
) -> (Vec<ApproxResult>, u64, u64, usize) {
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: grid, ny: grid },
        domain: Some(spec.domain),
        metadata,
    };
    let (index, _) = build(file, &init).expect("init");
    let cfg = EngineConfig {
        synopsis,
        ..EngineConfig::paper_evaluation()
    };
    let mut engine = ApproximateEngine::new(index, file, cfg).expect("engine");
    file.counters().reset();
    let aggs = [
        AggregateFunction::Count,
        AggregateFunction::Sum(2),
        AggregateFunction::Mean(2),
    ];
    let results: Vec<ApproxResult> = windows
        .iter()
        .map(|w| engine.evaluate(w, &aggs, phi).expect("evaluate"))
        .collect();
    let objects = file.counters().objects_read();
    let bytes = file.counters().bytes_read();
    let leaves = engine.index().leaf_count();
    (results, objects, bytes, leaves)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Query-result and adaptation-trajectory equivalence between the CSV
    /// backend and its binary conversion, plus the byte advantage.
    #[test]
    fn prop_backends_equivalent(
        rows in 200u64..900,
        seed in 0u64..5,
        grid in 3usize..7,
        phi in prop_oneof![Just(0.0), 0.01f64..0.2],
        w1 in window_strategy(),
        w2 in window_strategy(),
        w3 in window_strategy(),
    ) {
        let spec = dataset(rows, seed, 4);
        let csv = spec.build_mem(CsvFormat::default()).unwrap();
        // Convert the *CSV file* (not the generator) so the converter paths
        // themselves are under test.
        let bin = BinFile::from_bytes(convert_to_bin(&csv).unwrap()).unwrap();
        let zone = ZoneFile::from_bytes(convert_to_zone(&csv).unwrap()).unwrap();
        prop_assert_eq!(bin.n_rows(), rows);
        prop_assert_eq!(zone.n_rows(), rows);
        // The same zone image served over HTTP ranged GETs.
        let store = ObjectStore::serve().unwrap();
        store.put("data.paizone", convert_to_zone(&csv).unwrap());
        let http = HttpFile::open(store.addr(), "data.paizone", HttpOptions::default()).unwrap();
        // ... and the same remote file behind the tiered block cache.
        let cached = CachedFile::with_config(
            Box::new(HttpFile::open(store.addr(), "data.paizone", HttpOptions::default()).unwrap()),
            CacheConfig::new(4 << 20, 0),
        );
        prop_assert!(cached.is_attached(), "http backend must bind the cache");

        let windows = [w1, w2, w3];
        let (rc, co, cb, cl) = run_sequence(&csv, &spec, grid, &windows, phi);
        let (rb, bo, bb, bl) = run_sequence(&bin, &spec, grid, &windows, phi);
        let (rz, zo, zb, zl) = run_sequence(&zone, &spec, grid, &windows, phi);
        let (rh, ho, hb, hl) = run_sequence(&http, &spec, grid, &windows, phi);
        let (rq, qo, qb, ql) = run_sequence(&cached, &spec, grid, &windows, phi);

        for (i, (((c, b), z), h)) in rc.iter().zip(&rb).zip(&rz).zip(&rh).enumerate() {
            for (((cv, bv), zv), hv) in
                c.values.iter().zip(&b.values).zip(&z.values).zip(&h.values)
            {
                prop_assert_eq!(cv.as_f64(), bv.as_f64(), "query {} answer", i);
                prop_assert_eq!(cv.as_f64(), zv.as_f64(), "query {} zone answer", i);
                prop_assert_eq!(cv.as_f64(), hv.as_f64(), "query {} http answer", i);
            }
            for (((cc, bc), zc), hc) in c.cis.iter().zip(&b.cis).zip(&z.cis).zip(&h.cis) {
                prop_assert_eq!(cc, bc, "query {} CI", i);
                prop_assert_eq!(cc, zc, "query {} zone CI", i);
                prop_assert_eq!(cc, hc, "query {} http CI", i);
            }
            prop_assert_eq!(c.error_bound, b.error_bound, "query {} bound", i);
            prop_assert_eq!(c.error_bound, z.error_bound, "query {} zone bound", i);
            prop_assert_eq!(c.error_bound, h.error_bound, "query {} http bound", i);
            prop_assert_eq!(
                c.stats.tiles_processed, b.stats.tiles_processed,
                "query {} trajectory", i
            );
            prop_assert_eq!(
                c.stats.tiles_processed, z.stats.tiles_processed,
                "query {} zone trajectory", i
            );
            prop_assert_eq!(
                c.stats.tiles_processed, h.stats.tiles_processed,
                "query {} http trajectory", i
            );
            prop_assert_eq!(c.stats.tiles_split, b.stats.tiles_split, "query {} splits", i);
            prop_assert_eq!(c.stats.tiles_split, z.stats.tiles_split, "query {} zone splits", i);
            prop_assert_eq!(c.stats.tiles_split, h.stats.tiles_split, "query {} http splits", i);
            prop_assert_eq!(c.stats.selected, b.stats.selected, "query {} selection", i);
        }
        // The cached remote leg is indistinguishable except in transport:
        // same answers, CIs, bounds, and trajectory as every other backend.
        for (i, (c, q)) in rc.iter().zip(&rq).enumerate() {
            for (cv, qv) in c.values.iter().zip(&q.values) {
                prop_assert_eq!(cv.as_f64(), qv.as_f64(), "query {} cached answer", i);
            }
            for (cc, qc) in c.cis.iter().zip(&q.cis) {
                prop_assert_eq!(cc, qc, "query {} cached CI", i);
            }
            prop_assert_eq!(c.error_bound, q.error_bound, "query {} cached bound", i);
            prop_assert_eq!(
                c.stats.tiles_processed, q.stats.tiles_processed,
                "query {} cached trajectory", i
            );
        }
        // Same splits in, same tree out.
        prop_assert_eq!(cl, bl, "final leaf counts must match");
        prop_assert_eq!(cl, zl, "zone leaf count must match");
        prop_assert_eq!(cl, hl, "http leaf count must match");
        prop_assert_eq!(cl, ql, "cached http leaf count must match");
        prop_assert_eq!(co, bo, "object meters must match");
        prop_assert_eq!(co, zo, "zone object meter must match");
        prop_assert_eq!(co, ho, "http object meter must match");
        prop_assert_eq!(co, qo, "cached http object meter must match");
        // The remote transport is invisible to the logical meters: an HTTP
        // zone file reads exactly the bytes its local twin reads — cached
        // or not (the cache is tier-blind to logical metering).
        prop_assert_eq!(zb, hb, "http logical bytes must equal zone's");
        prop_assert_eq!(zb, qb, "cached http logical bytes must equal zone's");
        prop_assert!(http.counters().http_requests() > 0, "reads went over the wire");
        // The cache can only remove transport, never add it; any span the
        // workload revisits is already served locally on the first pass.
        prop_assert!(
            cached.counters().http_requests() <= http.counters().http_requests(),
            "cached leg must never issue more GETs: {} vs {}",
            cached.counters().http_requests(),
            http.counters().http_requests()
        );
        prop_assert_eq!(
            http.counters().cache_hits() + http.counters().cache_misses(),
            0u64,
            "an uncached file must report zero cache traffic"
        );
        // The tentpole claim: binary positional reads are never more
        // expensive in bytes, and strictly cheaper once anything is read.
        prop_assert!(bb <= cb, "bin bytes {} > csv bytes {}", bb, cb);
        if co > 0 {
            prop_assert!(bb < cb, "expected a strict byte advantage: {} vs {}", bb, cb);
            prop_assert!(zb < cb, "expected zone below csv: {} vs {}", zb, cb);
        }
    }

    /// Ground truth is backend-independent: a (pushdown-capable) scan of
    /// each conversion sees exactly the selection the CSV scan sees.
    #[test]
    fn prop_conversion_preserves_ground_truth(
        rows in 100u64..500,
        seed in 0u64..5,
        window in window_strategy(),
    ) {
        let spec = dataset(rows, seed, 3);
        let csv = spec.build_mem(CsvFormat::default()).unwrap();
        let bin = BinFile::from_bytes(convert_to_bin(&csv).unwrap()).unwrap();
        let zone = ZoneFile::from_bytes(convert_to_zone(&csv).unwrap()).unwrap();
        let tc = pai_storage::ground_truth::window_truth(&csv, &window, &[2]).unwrap();
        let tb = pai_storage::ground_truth::window_truth(&bin, &window, &[2]).unwrap();
        let tz = pai_storage::ground_truth::window_truth(&zone, &window, &[2]).unwrap();
        prop_assert_eq!(tc[0].selected, tb[0].selected);
        prop_assert_eq!(tc[0].stats.sum(), tb[0].stats.sum());
        prop_assert_eq!(tc[0].stats.min(), tb[0].stats.min());
        prop_assert_eq!(tc[0].stats.max(), tb[0].stats.max());
        prop_assert_eq!(tc[0].selected, tz[0].selected);
        prop_assert_eq!(tc[0].stats.sum(), tz[0].stats.sum());
        prop_assert_eq!(tc[0].stats.min(), tz[0].stats.min());
        prop_assert_eq!(tc[0].stats.max(), tz[0].stats.max());
    }

    /// On a spatially clustered layout (the realistic converted-archive
    /// case), `PaiZone` answers the same workload **plus its per-query
    /// ground-truth verification** with identical results while moving
    /// strictly fewer bytes than `PaiBin`; blocks never exceed `PaiBin`'s
    /// (same 4096-row granularity) and are strictly fewer whenever the
    /// zone maps prove anything dead.
    #[test]
    fn prop_zone_pushdown_cheaper_on_clustered_layout(
        rows in 12_288u64..20_000,
        seed in 0u64..3,
        phi in prop_oneof![Just(0.02), 0.05f64..0.15],
        w1 in window_strategy(),
        w2 in window_strategy(),
    ) {
        let spec = DatasetSpec {
            order: RowOrder::ZOrder,
            ..dataset(rows, seed, 4)
        };
        // One physical order for every backend: equivalence by construction.
        let rows_phys = spec.rows_physical();
        let bin = BinFile::from_rows(&spec.schema(), rows_phys.clone()).unwrap();
        let zone = ZoneFile::from_rows(&spec.schema(), rows_phys).unwrap();

        let windows = [w1, w2];
        let run_verified = |file: &dyn RawFile| {
            let (results, ..) = run_sequence(file, &spec, 4, &windows, phi);
            let truths: Vec<f64> = windows
                .iter()
                .map(|w| {
                    pai_storage::ground_truth::window_truth(file, w, &[2]).unwrap()[0]
                        .stats
                        .sum()
                })
                .collect();
            (results, truths, file.counters().snapshot())
        };
        let (rb, tb, sb) = run_verified(&bin);
        let (rz, tz, sz) = run_verified(&zone);

        for (i, (b, z)) in rb.iter().zip(&rz).enumerate() {
            for (bv, zv) in b.values.iter().zip(&z.values) {
                prop_assert_eq!(bv.as_f64(), zv.as_f64(), "query {} answer", i);
            }
            for (bc, zc) in b.cis.iter().zip(&z.cis) {
                prop_assert_eq!(bc, zc, "query {} CI", i);
            }
            prop_assert_eq!(b.error_bound, z.error_bound, "query {} bound", i);
            prop_assert_eq!(
                b.stats.tiles_processed, z.stats.tiles_processed,
                "query {} trajectory", i
            );
            prop_assert_eq!(
                b.stats.io.objects_read, z.stats.io.objects_read,
                "query {} engine objects", i
            );
        }
        prop_assert_eq!(tb, tz, "verification truths must agree");
        // (Total objects differ by design: pruned truth scans never even
        // touch the records of dead blocks.)
        prop_assert!(
            sz.bytes_read < sb.bytes_read,
            "zone must move strictly fewer bytes: {} vs {}",
            sz.bytes_read, sb.bytes_read
        );
        prop_assert!(
            sz.blocks_read <= sb.blocks_read,
            "zone must never touch more blocks: {} vs {}",
            sz.blocks_read, sb.blocks_read
        );
        if sz.blocks_skipped > 0 {
            prop_assert!(
                sz.blocks_read < sb.blocks_read,
                "skipped blocks must show up as strictly fewer reads: {} vs {} (+{})",
                sz.blocks_read, sb.blocks_read, sz.blocks_skipped
            );
        }
        prop_assert_eq!(sb.blocks_skipped, 0, "PaiBin cannot skip");
    }
}

/// A remote `PaiZone` under fault injection answers exactly like its local
/// twin: every 4th request 5xx-fails at the server, the client retries
/// with backoff, and the only observable difference is the `retries`
/// meter.
#[test]
fn http_backend_with_faults_matches_zone_exactly() {
    let spec = dataset(600, 3, 4);
    let csv = spec.build_mem(CsvFormat::default()).unwrap();
    let zone = ZoneFile::from_bytes(convert_to_zone(&csv).unwrap()).unwrap();
    let store = ObjectStore::serve_with(
        std::time::Duration::ZERO,
        "5xx:4".parse().expect("fault plan"),
    )
    .unwrap();
    store.put("data.paizone", convert_to_zone(&csv).unwrap());
    let http = HttpFile::open(store.addr(), "data.paizone", HttpOptions::default()).unwrap();

    let windows = [
        Rect::new(100.0, 400.0, 100.0, 400.0),
        Rect::new(300.0, 700.0, 200.0, 600.0),
    ];
    let (rz, zo, zb, zl) = run_sequence(&zone, &spec, 4, &windows, 0.05);
    let (rh, ho, hb, hl) = run_sequence(&http, &spec, 4, &windows, 0.05);
    for (z, h) in rz.iter().zip(&rh) {
        for (zv, hv) in z.values.iter().zip(&h.values) {
            assert_eq!(zv.as_f64(), hv.as_f64());
        }
        for (zc, hc) in z.cis.iter().zip(&h.cis) {
            assert_eq!(zc, hc);
        }
        assert_eq!(z.error_bound, h.error_bound);
        assert_eq!(z.stats.tiles_processed, h.stats.tiles_processed);
    }
    assert_eq!((zo, zb, zl), (ho, hb, hl), "logical meters identical");
    assert!(store.faults_injected() > 0, "faults actually fired");
    assert!(
        http.counters().retries() > 0,
        "the retry path carried the workload"
    );
}

/// A remote `PaiZone` behind the tiered block cache answers exactly like
/// its uncached twin in both a cold and a warm session; the cold session
/// never issues more GETs than the uncached run (intra-session revisits
/// are already served locally), and a warm re-run (fresh engine + index,
/// same cache) goes back to the wire strictly less — here, not at all.
#[test]
fn cached_http_matches_zone_and_warm_rerun_stays_off_the_wire() {
    let spec = dataset(800, 5, 4);
    let csv = spec.build_mem(CsvFormat::default()).unwrap();
    let zone = ZoneFile::from_bytes(convert_to_zone(&csv).unwrap()).unwrap();
    let store = ObjectStore::serve().unwrap();
    store.put("data.paizone", convert_to_zone(&csv).unwrap());
    let open = || HttpFile::open(store.addr(), "data.paizone", HttpOptions::default()).unwrap();

    let windows = [
        Rect::new(100.0, 400.0, 100.0, 400.0),
        Rect::new(300.0, 700.0, 200.0, 600.0),
        Rect::new(100.0, 400.0, 100.0, 400.0), // a revisit, as explorers do
    ];
    let (rz, zo, zb, zl) = run_sequence(&zone, &spec, 4, &windows, 0.05);
    let uncached = open();
    let (rh, ..) = run_sequence(&uncached, &spec, 4, &windows, 0.05);
    let uncached_gets = uncached.counters().http_requests();

    let cached = CachedFile::with_config(Box::new(open()), CacheConfig::new(4 << 20, 0));
    let (r1, o1, b1, l1) = run_sequence(&cached, &spec, 4, &windows, 0.05);
    let cold_gets = cached.counters().http_requests();
    let cold_misses = cached.counters().cache_misses();
    let (r2, o2, b2, l2) = run_sequence(&cached, &spec, 4, &windows, 0.05);
    let warm_gets = cached.counters().http_requests();

    for (results, session) in [(&rh, "uncached"), (&r1, "cold"), (&r2, "warm")] {
        for (z, c) in rz.iter().zip(results.iter()) {
            for (zv, cv) in z.values.iter().zip(&c.values) {
                assert_eq!(zv.as_f64(), cv.as_f64(), "{session} answers match zone's");
            }
            for (zc, cc) in z.cis.iter().zip(&c.cis) {
                assert_eq!(zc, cc, "{session} CIs match zone's");
            }
            assert_eq!(z.error_bound, c.error_bound, "{session} bound");
            assert_eq!(
                z.stats.tiles_processed, c.stats.tiles_processed,
                "{session} trajectory"
            );
        }
    }
    // Cold session answers came over the wire at least partly; the logical
    // meters are tier-blind in both sessions.
    assert_eq!((rz.len(), zo, zb, zl), (r1.len(), o1, b1, l1));
    assert_eq!((zo, zb, zl), (o2, b2, l2), "warm session logical meters");
    assert!(cold_misses > 0, "cold session actually missed");
    assert!(cold_gets > 0, "cold session actually fetched");
    assert!(
        cold_gets <= uncached_gets,
        "the cache can only remove transport: cold {cold_gets} vs uncached {uncached_gets}"
    );
    assert!(
        warm_gets < cold_gets,
        "warm re-run must go to the wire strictly less: {warm_gets} vs {cold_gets}"
    );
    assert_eq!(
        warm_gets, 0,
        "with the whole working set admitted, the warm session is wire-free"
    );
    assert!(
        cached.counters().cache_hits() > 0,
        "warm session served from the cache"
    );
}

/// Deterministic strict version of the pushdown claim (the acceptance
/// gate's shape, as a plain test): on the clustered layout, a corner-bound
/// exploration plus its verification reads strictly fewer blocks and bytes
/// on `PaiZone` than on `PaiBin`, for identical answers and CIs.
#[test]
fn zone_pushdown_strictly_cheaper_deterministic() {
    let spec = DatasetSpec {
        rows: 20_000,
        columns: 4,
        seed: 9,
        order: RowOrder::ZOrder,
        ..Default::default()
    };
    let rows_phys = spec.rows_physical();
    let bin = BinFile::from_rows(&spec.schema(), rows_phys.clone()).unwrap();
    let zone = ZoneFile::from_rows(&spec.schema(), rows_phys).unwrap();

    // A corner-anchored pan: far corners of the Z-curve stay provably dead.
    let windows: Vec<Rect> = (0..4)
        .map(|i| {
            let off = 40.0 * i as f64;
            Rect::new(20.0 + off, 220.0 + off, 20.0 + off, 220.0 + off)
        })
        .collect();
    let run_verified = |file: &dyn RawFile| {
        let (results, ..) = run_sequence(file, &spec, 5, &windows, 0.05);
        for w in &windows {
            pai_storage::ground_truth::window_truth(file, w, &[2]).unwrap();
        }
        (results, file.counters().snapshot())
    };
    let (rb, sb) = run_verified(&bin);
    let (rz, sz) = run_verified(&zone);

    for (b, z) in rb.iter().zip(&rz) {
        for (bv, zv) in b.values.iter().zip(&z.values) {
            assert_eq!(bv.as_f64(), zv.as_f64());
        }
        for (bc, zc) in b.cis.iter().zip(&z.cis) {
            assert_eq!(bc, zc);
        }
        assert_eq!(b.error_bound, z.error_bound);
        assert_eq!(b.stats.io.objects_read, z.stats.io.objects_read);
    }
    // (Total objects are incomparable: pruned truth scans never touch the
    // records of dead blocks at all.)
    assert!(sz.blocks_skipped > 0, "zone maps must prove blocks dead");
    assert!(
        sz.blocks_read < sb.blocks_read,
        "strictly fewer blocks: zone {} vs bin {}",
        sz.blocks_read,
        sb.blocks_read
    );
    assert!(
        sz.bytes_read < sb.bytes_read,
        "strictly fewer bytes: zone {} vs bin {}",
        sz.bytes_read,
        sb.bytes_read
    );
}

/// [`run_sequence`] with the adaptation batch size and fetch-worker count
/// under the caller's control (the ingest leg sweeps both).
fn run_sequence_cfg(
    file: &dyn RawFile,
    spec: &DatasetSpec,
    grid: usize,
    windows: &[Rect],
    phi: f64,
    adapt_batch: usize,
    fetch_workers: usize,
) -> (Vec<ApproxResult>, usize) {
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: grid, ny: grid },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    let (index, _) = build(file, &init).expect("init");
    let cfg = EngineConfig {
        adapt_batch,
        fetch_workers,
        ..EngineConfig::paper_evaluation()
    };
    let mut engine = ApproximateEngine::new(index, file, cfg).expect("engine");
    let aggs = [
        AggregateFunction::Count,
        AggregateFunction::Sum(2),
        AggregateFunction::Mean(2),
    ];
    let results: Vec<ApproxResult> = windows
        .iter()
        .map(|w| engine.evaluate(w, &aggs, phi).expect("evaluate"))
        .collect();
    let leaves = engine.index().leaf_count();
    (results, leaves)
}

/// The ingest leg: a base file extended with streamed delta batches must be
/// indistinguishable — byte for byte, on every backend, at every
/// adapt-batch × fetch-workers combination — from a statically-built file
/// holding the same rows in the same order.
///
/// Each backend (mem/bin/zone/http) is wrapped in an `AppendableFile` with
/// a deliberately small delta-block size, fed the same delta stream in
/// uneven batches (so the run ends with several sealed blocks *and* a
/// non-empty open tail), and then driven through the standard query
/// sequence. The static twin is a `BinFile` built from base + delta rows in
/// append order: pre-compaction the appendable scans base-then-deltas in
/// exactly that order, so index build, adaptation trajectory, and every
/// float fold are identical by construction — the comparisons below are on
/// raw bits, not within tolerances.
#[test]
fn streamed_ingest_matches_statically_built_file_on_every_backend() {
    let spec = dataset(900, 11, 4);
    let csv = spec.build_mem(CsvFormat::default()).unwrap();
    // Deterministic in-domain delta stream: scattered on both axes so the
    // appended rows land across many tiles, with distinctive payloads.
    let delta: Vec<Vec<f64>> = (0..300)
        .map(|i| {
            let x = ((i * 37 + 13) % 1000) as f64 + 0.25;
            let y = ((i * 91 + 7) % 1000) as f64 + 0.75;
            vec![x, y, 100.0 + i as f64, -2.0 * i as f64]
        })
        .collect();
    let mut all_rows = spec.rows_physical();
    all_rows.extend(delta.iter().cloned());
    let twin = BinFile::from_rows(&spec.schema(), all_rows).unwrap();

    let store = ObjectStore::serve().unwrap();
    store.put("ingest.paizone", convert_to_zone(&csv).unwrap());

    let windows = [
        Rect::new(100.0, 450.0, 100.0, 450.0),
        Rect::new(300.0, 700.0, 200.0, 600.0),
        Rect::new(50.0, 950.0, 50.0, 950.0),
    ];
    // Uneven batch cuts: 120 + 130 + 50 rows against 64-row delta blocks
    // leaves 4 sealed blocks plus a 44-row open tail.
    let cuts = [0usize, 120, 250, 300];

    for &(adapt_batch, fetch_workers) in &[(1, 1), (1, 4), (4, 1), (4, 4)] {
        let (rt, lt) =
            run_sequence_cfg(&twin, &spec, 5, &windows, 0.05, adapt_batch, fetch_workers);
        let backends: Vec<(&str, Box<dyn RawFile>)> = vec![
            (
                "mem",
                Box::new(
                    pai_storage::AppendableFile::with_layout(
                        spec.build_mem(CsvFormat::default()).unwrap(),
                        spec.rows,
                        64,
                        SynopsisSpec::default(),
                    )
                    .unwrap(),
                ),
            ),
            (
                "bin",
                Box::new(
                    pai_storage::AppendableFile::with_layout(
                        BinFile::from_bytes(convert_to_bin(&csv).unwrap()).unwrap(),
                        spec.rows,
                        64,
                        SynopsisSpec::default(),
                    )
                    .unwrap(),
                ),
            ),
            (
                "zone",
                Box::new(
                    pai_storage::AppendableFile::with_layout(
                        ZoneFile::from_bytes(convert_to_zone(&csv).unwrap()).unwrap(),
                        spec.rows,
                        64,
                        SynopsisSpec::default(),
                    )
                    .unwrap(),
                ),
            ),
            (
                "http",
                Box::new(
                    pai_storage::AppendableFile::with_layout(
                        HttpFile::open(store.addr(), "ingest.paizone", HttpOptions::default())
                            .unwrap(),
                        spec.rows,
                        64,
                        SynopsisSpec::default(),
                    )
                    .unwrap(),
                ),
            ),
        ];
        for (label, file) in backends {
            for pair in cuts.windows(2) {
                let receipt = file.append_rows(&delta[pair[0]..pair[1]]).unwrap();
                assert_eq!(receipt.start_row, spec.rows + pair[0] as u64, "{label}");
                assert_eq!(receipt.locators.len(), pair[1] - pair[0], "{label}");
            }
            let (rs, ls) = run_sequence_cfg(
                file.as_ref(),
                &spec,
                5,
                &windows,
                0.05,
                adapt_batch,
                fetch_workers,
            );
            let tag = format!("{label} batch={adapt_batch} workers={fetch_workers}");
            assert_eq!(rt.len(), rs.len(), "{tag}");
            for (i, (t, s)) in rt.iter().zip(&rs).enumerate() {
                for (tv, sv) in t.values.iter().zip(&s.values) {
                    assert_eq!(
                        tv.as_f64().map(f64::to_bits),
                        sv.as_f64().map(f64::to_bits),
                        "{tag} query {i}: answer bits"
                    );
                }
                for (tc, sc) in t.cis.iter().zip(&s.cis) {
                    assert_eq!(
                        tc.map(|c| (c.lo().to_bits(), c.hi().to_bits())),
                        sc.map(|c| (c.lo().to_bits(), c.hi().to_bits())),
                        "{tag} query {i}: CI bits"
                    );
                }
                assert_eq!(
                    t.error_bound.to_bits(),
                    s.error_bound.to_bits(),
                    "{tag} query {i}: bound bits"
                );
                assert_eq!(
                    t.stats.tiles_processed, s.stats.tiles_processed,
                    "{tag} query {i}: trajectory"
                );
                assert_eq!(
                    t.stats.selected, s.stats.selected,
                    "{tag} query {i}: selection"
                );
            }
            assert_eq!(lt, ls, "{tag}: leaf counts");
        }
    }
}

/// Metadata-free cold start (`MetadataPolicy::None`) converges to the same
/// answers as eager `AllNumeric` seeding on every backend. The trajectories
/// legitimately differ (None has to discover per-tile metadata as it
/// refines), and the converged sums are folded in a different grouping
/// order, so values match to relative 1e-9 rather than bit-exactly.
#[test]
fn metadata_free_cold_start_converges_on_every_backend() {
    let spec = dataset(900, 7, 4);
    let csv = spec.build_mem(CsvFormat::default()).unwrap();
    let bin = BinFile::from_bytes(convert_to_bin(&csv).unwrap()).unwrap();
    let zone = ZoneFile::from_bytes(convert_to_zone(&csv).unwrap()).unwrap();
    let store = ObjectStore::serve().unwrap();
    store.put("cold.paizone", convert_to_zone(&csv).unwrap());
    let http = HttpFile::open(store.addr(), "cold.paizone", HttpOptions::default()).unwrap();

    let windows = [
        Rect::new(100.0, 450.0, 100.0, 450.0),
        Rect::new(300.0, 700.0, 200.0, 600.0),
        Rect::new(50.0, 950.0, 50.0, 950.0),
    ];
    let close = |a: f64, b: f64| (a - b).abs() <= 1e-9 * (1.0 + a.abs().max(b.abs()));

    for (label, file) in [
        ("csv", &csv as &dyn RawFile),
        ("bin", &bin),
        ("zone", &zone),
        ("http", &http),
    ] {
        // φ = 0: both policies drive to exact answers.
        let (seeded, ..) = run_sequence_with(
            file,
            &spec,
            4,
            &windows,
            0.0,
            MetadataPolicy::AllNumeric,
            false,
        );
        let (cold, ..) =
            run_sequence_with(file, &spec, 4, &windows, 0.0, MetadataPolicy::None, false);
        for (i, (s, c)) in seeded.iter().zip(&cold).enumerate() {
            assert_eq!(s.values.len(), c.values.len());
            for (sv, cv) in s.values.iter().zip(&c.values) {
                match (sv.as_f64(), cv.as_f64()) {
                    (Some(a), Some(b)) => {
                        assert!(close(a, b), "{label} query {i}: {a} vs cold {b}")
                    }
                    (a, b) => assert_eq!(a, b, "{label} query {i}: presence must agree"),
                }
            }
            assert_eq!(s.error_bound, 0.0, "{label} query {i}: seeded exact");
            assert_eq!(c.error_bound, 0.0, "{label} query {i}: cold exact");
        }

        // Cold start *with* synopses at φ = 5%: still sound against truth.
        let (approx, ..) =
            run_sequence_with(file, &spec, 4, &windows, 0.05, MetadataPolicy::None, true);
        for (w, res) in windows.iter().zip(&approx) {
            assert!(res.met_constraint && res.error_bound <= 0.05 + 1e-12);
            let truth = &pai_storage::ground_truth::window_truth(file, w, &[2]).unwrap()[0];
            let selected = truth.selected as f64;
            let expect = [selected, truth.stats.sum(), truth.stats.sum() / selected];
            for (ci, t) in res.cis.iter().zip(expect) {
                if let Some(ci) = ci {
                    assert!(
                        ci.contains(t) || close(ci.lo(), t) || close(ci.hi(), t),
                        "{label}: CI {ci:?} lost truth {t}"
                    );
                }
            }
        }
    }
}
