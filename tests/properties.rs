//! Cross-crate property-based tests of the paper's guarantees.
//!
//! These are the load-bearing invariants:
//!   1. every confidence interval contains the exact answer;
//!   2. realized error ≤ reported upper bound;
//!   3. processing more tiles never widens an interval (monotonicity);
//!   4. index structural invariants survive arbitrary query sequences;
//!   5. exact engine ≡ full-scan ground truth.

use pai_core::verify::verify_against_truth;
use pai_storage::build_block_synopses;
use pai_storage::ground_truth::window_truth;
use partial_adaptive_indexing::prelude::*;
use proptest::prelude::*;

/// A small clustered dataset; proptest shrinks over windows/phis, not data.
fn fixture(seed: u64) -> (MemFile, DatasetSpec) {
    let spec = DatasetSpec {
        rows: 1_500,
        columns: 4,
        seed,
        ..Default::default()
    };
    let file = spec.build_mem(CsvFormat::default()).unwrap();
    (file, spec)
}

fn build_index(file: &MemFile, spec: &DatasetSpec, n: usize) -> ValinorIndex {
    let cfg = InitConfig {
        grid: GridSpec::Fixed { nx: n, ny: n },
        domain: Some(spec.domain),
        metadata: MetadataPolicy::AllNumeric,
    };
    build(file, &cfg).unwrap().0
}

fn window_strategy() -> impl Strategy<Value = Rect> {
    (0.0f64..900.0, 0.0f64..900.0, 10.0f64..600.0, 10.0f64..600.0)
        .prop_map(|(x0, y0, w, h)| Rect::new(x0, (x0 + w).min(1000.0), y0, (y0 + h).min(1000.0)))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Guarantee 1 + 2 over random windows, phis, and grids.
    #[test]
    fn prop_ci_contains_truth(
        window in window_strategy(),
        phi in prop_oneof![Just(0.0), 0.001f64..0.3],
        grid in 2usize..9,
        seed in 0u64..4,
    ) {
        let (file, spec) = fixture(seed);
        let index = build_index(&file, &spec, grid);
        let mut engine =
            ApproximateEngine::new(index, &file, EngineConfig::paper_evaluation()).unwrap();
        let aggs = [
            AggregateFunction::Count,
            AggregateFunction::Sum(2),
            AggregateFunction::Mean(2),
            AggregateFunction::Min(3),
            AggregateFunction::Max(3),
        ];
        let res = engine.evaluate(&window, &aggs, phi).unwrap();
        prop_assert!(res.met_constraint);
        let report = verify_against_truth(
            &file, &window, &aggs, &res, NormalizationMode::Estimate,
        ).unwrap();
        prop_assert!(report.all_ok(), "{report:?}");
    }

    /// Guarantee 3: a tighter phi on a fresh index processes at least as
    /// many tiles and ends with an equal-or-smaller bound.
    #[test]
    fn prop_tighter_phi_monotone(
        window in window_strategy(),
        seed in 0u64..4,
        (phi_loose, phi_tight) in (0.02f64..0.4).prop_flat_map(|hi| (Just(hi), 0.0f64..hi)),
    ) {
        let (file, spec) = fixture(seed);
        let aggs = [AggregateFunction::Sum(2)];

        let run = |phi: f64| {
            let index = build_index(&file, &spec, 5);
            let mut engine =
                ApproximateEngine::new(index, &file, EngineConfig::paper_evaluation()).unwrap();
            let res = engine.evaluate(&window, &aggs, phi).unwrap();
            (res.stats.tiles_processed, res.error_bound)
        };
        let (proc_loose, bound_loose) = run(phi_loose);
        let (proc_tight, bound_tight) = run(phi_tight);
        prop_assert!(proc_tight >= proc_loose,
            "tight {proc_tight} < loose {proc_loose}");
        prop_assert!(bound_tight <= bound_loose + 1e-12);
    }

    /// Guarantee 4: index invariants after random query sequences mixing
    /// exact and approximate evaluation.
    #[test]
    fn prop_invariants_after_query_sequences(
        windows in prop::collection::vec(window_strategy(), 1..8),
        seed in 0u64..3,
    ) {
        let (file, spec) = fixture(seed);
        let index = build_index(&file, &spec, 4);
        let mut engine =
            ApproximateEngine::new(index, &file, EngineConfig::paper_evaluation()).unwrap();
        for (i, w) in windows.iter().enumerate() {
            let phi = [0.0, 0.05, 0.2][i % 3];
            engine.evaluate(w, &[AggregateFunction::Mean(2)], phi).unwrap();
        }
        prop_assert!(engine.index().validate_invariants().is_ok());
        prop_assert_eq!(engine.index().total_objects(), 1_500);
    }

    /// Guarantee 5: the exact engine equals ground truth on arbitrary
    /// windows (sum/count; the float-exact aggregates).
    #[test]
    fn prop_exact_engine_equals_truth(
        window in window_strategy(),
        seed in 0u64..4,
    ) {
        let (file, spec) = fixture(seed);
        let index = build_index(&file, &spec, 4);
        let mut engine = ExactEngine::new(index, &file, AdaptConfig::default()).unwrap();
        let res = engine
            .evaluate(&window, &[AggregateFunction::Count, AggregateFunction::Sum(2)])
            .unwrap();
        let truth = window_truth(&file, &window, &[2]).unwrap();
        prop_assert_eq!(res.values[0], AggregateValue::Count(truth[0].selected));
        let sum = res.values[1].as_f64().unwrap();
        prop_assert!((sum - truth[0].stats.sum()).abs() < 1e-6 * (1.0 + sum.abs()));
    }

    /// Split policies all preserve objects and produce valid hierarchies.
    #[test]
    fn prop_split_policies_preserve_structure(
        window in window_strategy(),
        policy_ix in 0usize..4,
        seed in 0u64..3,
    ) {
        let policy = [
            SplitPolicy::QueryAligned,
            SplitPolicy::Grid { rows: 2, cols: 2 },
            SplitPolicy::Grid { rows: 3, cols: 3 },
            SplitPolicy::KdMedian,
        ][policy_ix];
        let (file, spec) = fixture(seed);
        let index = build_index(&file, &spec, 4);
        let cfg = EngineConfig {
            adapt: AdaptConfig { split: policy, min_split_objects: 4, ..Default::default() },
            ..EngineConfig::paper_evaluation()
        };
        let mut engine = ApproximateEngine::new(index, &file, cfg).unwrap();
        engine.evaluate(&window, &[AggregateFunction::Sum(2)], 0.0).unwrap();
        prop_assert!(engine.index().validate_invariants().is_ok());
        prop_assert_eq!(engine.index().total_objects(), 1_500);
    }
}

/// Coordinate values biased toward the edge cases that break pruning and
/// histogram math: NaN, signed zero, exact boundary magnitudes, plus a
/// continuous range.
fn edge_value() -> impl Strategy<Value = f64> {
    prop_oneof![
        Just(f64::NAN),
        Just(-0.0f64),
        Just(0.0f64),
        Just(-1000.0f64),
        Just(1000.0f64),
        -1000.0f64..1000.0,
        -1000.0f64..1000.0,
        -1000.0f64..1000.0,
    ]
}

/// Arbitrary (possibly empty, degenerate, or NaN-cornered) query intervals.
fn edge_interval() -> impl Strategy<Value = (f64, f64)> {
    (edge_value(), edge_value())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Zone-map pruning soundness over adversarial data: whenever *any*
    /// point of a block falls inside the window, the block's envelope must
    /// refuse to prune — including blocks whose columns also contain NaN
    /// or signed zeros.
    #[test]
    fn prop_zone_pruning_never_drops_selected_points(
        points in prop::collection::vec((edge_value(), edge_value()), 1..40),
        (wx, wy) in ((0.0f64..900.0, 10.0f64..600.0), (0.0f64..900.0, 10.0f64..600.0)),
    ) {
        let window = Rect::new(wx.0, wx.0 + wx.1, wy.0, wy.0 + wy.1);
        // The NaN-skipping envelope fold every block-structured backend uses.
        let fold = |vals: &[f64]| {
            vals.iter().filter(|v| !v.is_nan()).fold(
                (f64::NAN, f64::NAN),
                |(lo, hi), &v| (v.min(if lo.is_nan() { v } else { lo }),
                                v.max(if hi.is_nan() { v } else { hi })),
            )
        };
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        let (x_lo, x_hi) = fold(&xs);
        let (y_lo, y_hi) = fold(&ys);
        let stats = BlockStats {
            row_start: 0,
            row_end: points.len() as u64,
            min: vec![x_lo, y_lo],
            max: vec![x_hi, y_hi],
        };
        let selected = points
            .iter()
            .any(|&(x, y)| window.contains_point(Point2::new(x, y)));
        if selected {
            prop_assert!(
                stats.may_intersect_window(0, 1, &window),
                "pruned a block holding a selected point: {stats:?} vs {window:?}"
            );
        }
        // Inverted or NaN envelopes must never prune anything.
        let broken = BlockStats {
            row_start: 0,
            row_end: points.len() as u64,
            min: vec![x_hi, f64::NAN],
            max: vec![x_lo, y_hi],
        };
        prop_assert!(broken.may_intersect_window(0, 1, &window));
    }

    /// Histogram mass bounds bracket the true half-open selection count for
    /// arbitrary (NaN-laden, signed-zero, degenerate) columns and intervals,
    /// and never exceed the non-NaN count.
    #[test]
    fn prop_histogram_mass_brackets_true_count(
        values in prop::collection::vec(edge_value(), 0..120),
        buckets in 1usize..12,
        (lo, hi) in edge_interval(),
    ) {
        let syn = ColumnSynopsis::from_values(&values, buckets);
        let truth = values
            .iter()
            .filter(|v| !v.is_nan() && **v >= lo && **v < hi)
            .count() as u64;
        let (lower, upper) = syn.mass_in(lo, hi);
        prop_assert!(upper <= syn.count, "upper {upper} > count {}", syn.count);
        if lo.is_nan() || hi.is_nan() {
            // NaN endpoints degrade to the conservative no-information bound.
            prop_assert_eq!((lower, upper), (0, syn.count));
        } else {
            prop_assert!(lower <= truth, "lower {lower} > truth {truth}");
            prop_assert!(truth <= upper, "truth {truth} > upper {upper}");
        }
    }

    /// Block synopses built over adversarial columns stay answer-sound:
    /// `covered_by` only claims blocks whose every row the window selects,
    /// and `selected_mass` brackets the per-block true selection.
    #[test]
    fn prop_block_synopses_bracket_block_selections(
        points in prop::collection::vec((edge_value(), edge_value()), 1..200),
        block_rows in 16u32..64,
        buckets in 1usize..8,
        (wx, wy) in ((-100.0f64..900.0, 10.0f64..600.0), (-100.0f64..900.0, 10.0f64..600.0)),
    ) {
        let window = Rect::new(wx.0, wx.0 + wx.1, wy.0, wy.0 + wy.1);
        let xs: Vec<f64> = points.iter().map(|p| p.0).collect();
        let ys: Vec<f64> = points.iter().map(|p| p.1).collect();
        let spec = SynopsisSpec { buckets, sample_rows: 2 };
        let blocks = build_block_synopses(&[xs.clone(), ys.clone()], block_rows, &spec);
        prop_assert_eq!(
            blocks.iter().map(|b| b.rows()).sum::<u64>(),
            points.len() as u64,
            "blocks must partition the rows"
        );
        for b in &blocks {
            let range = b.row_start as usize..b.row_end as usize;
            let truth = range
                .clone()
                .filter(|&r| window.contains_point(Point2::new(xs[r], ys[r])))
                .count() as u64;
            if b.covered_by(0, 1, &window) {
                prop_assert_eq!(
                    truth, b.rows(),
                    "covered_by claimed a block the window does not fully select"
                );
            }
            let (lower, upper) = b.selected_mass(0, 1, &window);
            prop_assert!(lower <= truth, "block lower {lower} > truth {truth}");
            prop_assert!(truth <= upper, "block truth {truth} > upper {upper}");
            prop_assert!(upper <= b.rows());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Delta-block synopsis soundness over adversarial appends: every
    /// sealed block's zone map brackets the non-NaN values of the rows it
    /// holds (NaN and −0.0 included in the stream), its histogram mass
    /// brackets the true half-open selection count of any interval, and its
    /// axis synopsis never claims coverage or mass the rows don't have —
    /// exactly the guarantees a statically-written PaiZone block gives,
    /// proven here for blocks born online at seal time.
    #[test]
    fn prop_delta_block_synopses_bracket_appended_rows(
        rows in prop::collection::vec(
            (edge_value(), edge_value(), edge_value(), edge_value()), 1..120),
        block_rows in 8u32..32,
        buckets in 1usize..8,
        (lo, hi) in edge_interval(),
        (wx, wy) in ((0.0f64..900.0, 10.0f64..600.0), (0.0f64..900.0, 10.0f64..600.0)),
    ) {
        let spec = DatasetSpec { rows: 50, columns: 4, seed: 3, ..Default::default() };
        let base = spec.build_mem(CsvFormat::default()).unwrap();
        let file = pai_storage::AppendableFile::with_layout(
            base,
            spec.rows,
            block_rows,
            SynopsisSpec { buckets, sample_rows: 2 },
        )
        .unwrap();
        let appended: Vec<Vec<f64>> =
            rows.iter().map(|&(a, b, c, d)| vec![a, b, c, d]).collect();
        file.append_rows(&appended).unwrap();

        let window = Rect::new(wx.0, wx.0 + wx.1, wy.0, wy.0 + wy.1);
        let stats = file.delta_block_stats();
        let syns = file.delta_synopses();
        let sealed = rows.len() / block_rows as usize;
        prop_assert_eq!(stats.len(), sealed, "one zone map per sealed block");
        prop_assert_eq!(syns.len(), sealed, "one synopsis per sealed block");

        for (b, (st, syn)) in stats.iter().zip(&syns).enumerate() {
            let br = block_rows as usize;
            let block_rows_slice = &appended[b * br..(b + 1) * br];
            // Pre-compaction, sealed blocks cover contiguous append ranges.
            prop_assert_eq!(st.row_start, spec.rows + (b * br) as u64);
            prop_assert_eq!(st.row_end, spec.rows + ((b + 1) * br) as u64);
            prop_assert_eq!(syn.rows(), br as u64);
            for c in 0..4usize {
                let col = &syn.cols[c];
                let vals: Vec<f64> = block_rows_slice.iter().map(|r| r[c]).collect();
                let non_nan = vals.iter().filter(|v| !v.is_nan()).count() as u64;
                prop_assert_eq!(col.count, non_nan, "block {b} col {c}: count");
                for &v in vals.iter().filter(|v| !v.is_nan()) {
                    prop_assert!(
                        st.min[c] <= v && v <= st.max[c],
                        "block {b} col {c}: envelope [{}, {}] lost value {v}",
                        st.min[c], st.max[c]
                    );
                }
                let truth = vals
                    .iter()
                    .filter(|v| !v.is_nan() && **v >= lo && **v < hi)
                    .count() as u64;
                let (mass_lo, mass_hi) = col.mass_in(lo, hi);
                prop_assert!(mass_hi <= col.count);
                if !lo.is_nan() && !hi.is_nan() {
                    prop_assert!(
                        mass_lo <= truth && truth <= mass_hi,
                        "block {b} col {c}: mass [{mass_lo}, {mass_hi}] lost \
                         truth {truth} for [{lo}, {hi})"
                    );
                }
            }
            // The axis synopsis, as the scan/estimate paths consume it.
            let truth = block_rows_slice
                .iter()
                .filter(|r| window.contains_point(Point2::new(r[0], r[1])))
                .count() as u64;
            let (sel_lo, sel_hi) = syn.selected_mass(0, 1, &window);
            prop_assert!(sel_lo <= truth && truth <= sel_hi);
            if syn.covered_by(0, 1, &window) {
                prop_assert_eq!(truth, syn.rows(), "covered_by over-claimed");
            }
            if truth > 0 {
                prop_assert!(
                    st.may_intersect_window(0, 1, &window),
                    "block {b}: pruned a block holding a selected appended row"
                );
            }
        }
    }

    /// Compaction is idempotent and answer-invariant: one compaction
    /// re-clusters every sealed delta block, a second (with nothing new
    /// appended) is a no-op that changes no byte of metadata, and both a
    /// pruned scan and an exact engine planned *before* the generation swap
    /// see the same rows afterwards — compaction permutes layout, never
    /// content.
    #[test]
    fn prop_compaction_idempotent_and_answer_invariant(
        appended in prop::collection::vec(
            (0.0f64..1000.0, 0.0f64..1000.0, -100.0f64..100.0), 48..120),
        block_rows in 8u32..32,
        window in window_strategy(),
        probe in window_strategy(),
        seed in 0u64..3,
    ) {
        let (base, spec) = fixture(seed);
        let file = pai_storage::AppendableFile::with_layout(
            base,
            spec.rows,
            block_rows,
            SynopsisSpec::default(),
        )
        .unwrap();
        let rows: Vec<Vec<f64>> = appended
            .iter()
            .map(|&(x, y, v)| vec![x.min(999.9), y.min(999.9), v, 0.5])
            .collect();
        file.append_rows(&rows).unwrap();

        // An exact engine planned against the pre-compaction layout: its
        // index entries hold locators that must survive the swap.
        let init = InitConfig {
            grid: GridSpec::Fixed { nx: 4, ny: 4 },
            domain: Some(spec.domain),
            metadata: MetadataPolicy::AllNumeric,
        };
        let (index, _) = build(&file, &init).unwrap();
        let mut engine = ExactEngine::new(index, &file, AdaptConfig::default()).unwrap();
        let aggs = [AggregateFunction::Count, AggregateFunction::Sum(2)];
        let before_engine = engine.evaluate(&window, &aggs).unwrap();

        let before = window_truth(&file, &window, &[2]).unwrap();
        let gen_before = file.generation();
        let first = file.compact_once(&spec.domain, 1).unwrap();
        prop_assert!(first.is_some(), "a sealed run must compact");
        let report = first.unwrap();
        prop_assert_eq!(report.generation, gen_before + 1);
        prop_assert_eq!(file.generation(), report.generation);
        let stats_once = file.delta_block_stats();

        // compact ∘ compact ≡ compact: nothing cold is left, so the second
        // pass must decline and leave every block byte-identical.
        let second = file.compact_once(&spec.domain, 1).unwrap();
        prop_assert!(second.is_none(), "recompaction must be a no-op");
        prop_assert_eq!(file.generation(), report.generation, "no-op must not bump");
        prop_assert_eq!(&file.delta_block_stats(), &stats_once);

        // Answers are layout-invariant: the pruned scan sees the same rows
        // (counts and extrema exactly; sums to fold-order tolerance)...
        let after = window_truth(&file, &window, &[2]).unwrap();
        prop_assert_eq!(after[0].selected, before[0].selected);
        prop_assert_eq!(after[0].stats.min(), before[0].stats.min());
        prop_assert_eq!(after[0].stats.max(), before[0].stats.max());
        let (s0, s1) = (before[0].stats.sum(), after[0].stats.sum());
        prop_assert!((s0 - s1).abs() <= 1e-9 * (1.0 + s0.abs()), "{s0} vs {s1}");

        // ... and the engine that planned before the swap redeems its
        // locators against the permuted layout without noticing: the same
        // window re-answers identically, and a fresh window still matches
        // a ground-truth scan.
        let after_engine = engine.evaluate(&window, &aggs).unwrap();
        prop_assert_eq!(&after_engine.values[0], &before_engine.values[0]);
        let (e0, e1) = (
            before_engine.values[1].as_f64().unwrap(),
            after_engine.values[1].as_f64().unwrap(),
        );
        prop_assert!((e0 - e1).abs() <= 1e-9 * (1.0 + e0.abs()), "{e0} vs {e1}");
        let probed = engine.evaluate(&probe, &aggs).unwrap();
        let truth = &window_truth(&file, &probe, &[2]).unwrap()[0];
        prop_assert_eq!(&probed.values[0], &AggregateValue::Count(truth.selected));
        let (p, t) = (probed.values[1].as_f64().unwrap(), truth.stats.sum());
        prop_assert!((p - t).abs() <= 1e-6 * (1.0 + p.abs()), "{p} vs {t}");
    }
}

/// Deterministic (non-proptest) regression: FullTile read policy answers
/// identically to WindowOnly, just with different I/O.
#[test]
fn read_policies_agree_on_answers() {
    let (file, spec) = fixture(9);
    let window = Rect::new(150.0, 620.0, 180.0, 740.0);
    let aggs = [AggregateFunction::Sum(2), AggregateFunction::Count];
    let mut results = Vec::new();
    for read in [ReadPolicy::WindowOnly, ReadPolicy::FullTile] {
        let index = build_index(&file, &spec, 5);
        let cfg = EngineConfig {
            adapt: AdaptConfig {
                read,
                ..Default::default()
            },
            ..EngineConfig::paper_evaluation()
        };
        let mut engine = ApproximateEngine::new(index, &file, cfg).unwrap();
        let res = engine.evaluate(&window, &aggs, 0.0).unwrap();
        results.push((res.values[0].as_f64().unwrap(), res.values[1]));
    }
    assert_eq!(results[0].1, results[1].1);
    assert!((results[0].0 - results[1].0).abs() < 1e-6 * (1.0 + results[0].0.abs()));
}
