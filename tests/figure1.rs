//! Integration test pinning the Figure 1 scenario of the paper (the same
//! setup as `examples/figure1_walkthrough.rs`, asserted rather than
//! printed).

use partial_adaptive_indexing::prelude::*;

fn hotels() -> Vec<Vec<f64>> {
    vec![
        vec![6.0, 12.0, 41.0],  // t1, inside Q
        vec![2.0, 18.0, 39.0],  // t1, outside Q
        vec![12.0, 6.0, 70.0],  // t3, inside Q
        vec![15.0, 8.0, 30.0],  // t3, inside Q
        vec![18.0, 2.0, 50.0],  // t3, outside Q
        vec![12.0, 12.0, 50.0], // t4a
        vec![14.0, 13.0, 52.0], // t4a
        vec![25.0, 25.0, 45.0], // far corner
    ]
}

fn engine_cfg() -> EngineConfig {
    EngineConfig {
        adapt: AdaptConfig {
            min_split_objects: 1,
            ..Default::default()
        },
        ..EngineConfig::paper_evaluation()
    }
}

fn prepared_index(file: &MemFile) -> ValinorIndex {
    let init = InitConfig {
        grid: GridSpec::Fixed { nx: 3, ny: 3 },
        domain: Some(Rect::new(0.0, 30.0, 0.0, 30.0)),
        metadata: MetadataPolicy::AllNumeric,
    };
    let (index, _) = build(file, &init).unwrap();
    // Pre-split t4 into quads (Figure 1(a) state).
    let mut engine = ApproximateEngine::new(index, file, engine_cfg()).unwrap();
    engine
        .evaluate(
            &Rect::new(10.0, 15.0, 10.0, 15.0),
            &[AggregateFunction::Mean(2)],
            0.0,
        )
        .unwrap();
    engine.into_index()
}

const Q: Rect = Rect {
    x_min: 5.0,
    x_max: 18.0,
    y_min: 5.0,
    y_max: 18.0,
};

#[test]
fn figure1_classification() {
    let file = MemFile::from_rows(Schema::synthetic(3), CsvFormat::default(), hotels()).unwrap();
    let index = prepared_index(&file);
    let c = index.classify(&Q);
    assert_eq!(c.full.len(), 1, "t4a is fully contained with objects");
    assert_eq!(c.partial.len(), 2, "t1 and t3");
    assert_eq!(c.selected_total, 5, "1 (t1) + 2 (t3) + 2 (t4a)");
    assert!(
        c.skipped_empty >= 3,
        "t2 and the empty t4 quads are skipped"
    );
}

#[test]
fn figure1_exact_adaptation_splits_both_tiles() {
    let file = MemFile::from_rows(Schema::synthetic(3), CsvFormat::default(), hotels()).unwrap();
    let index = prepared_index(&file);
    file.counters().reset();
    let mut exact = ExactEngine::new(index, &file, engine_cfg().adapt).unwrap();
    let res = exact.evaluate(&Q, &[AggregateFunction::Mean(2)]).unwrap();
    // "This results in reading three objects" — the selected objects of t1
    // and t3.
    assert_eq!(res.stats.io.objects_read, 3);
    assert_eq!(res.stats.tiles_split, 2, "t1 and t3 both split");
    // Exact mean over the 5 selected hotels: (41+70+30+50+52)/5.
    let mean = res.values[0].as_f64().unwrap();
    assert!((mean - 48.6).abs() < 1e-9, "{mean}");
}

#[test]
fn figure1_partial_adaptation_processes_only_t3() {
    let file = MemFile::from_rows(Schema::synthetic(3), CsvFormat::default(), hotels()).unwrap();
    let index = prepared_index(&file);
    file.counters().reset();
    let mut approx = ApproximateEngine::new(index, &file, engine_cfg()).unwrap();
    let res = approx
        .evaluate(&Q, &[AggregateFunction::Mean(2)], 0.05)
        .unwrap();

    assert!(res.met_constraint);
    assert_eq!(
        res.stats.tiles_processed, 1,
        "only t3 (larger score) processed"
    );
    assert_eq!(res.stats.tiles_split, 1, "only t3 split");
    assert_eq!(res.stats.io.objects_read, 2, "t1's file access avoided");

    // The reported interval contains the exact mean 48.6.
    let ci = res.cis[0].unwrap();
    assert!(ci.contains(48.6), "CI {ci} must contain 48.6");
    assert!(res.error_bound <= 0.05);

    // And the estimate uses t1's metadata midpoint (40) for its object:
    // (100 exact t3 + 102 exact t4a + 40 estimated t1) / 5 = 48.4.
    let est = res.values[0].as_f64().unwrap();
    assert!((est - 48.4).abs() < 1e-9, "{est}");
}

#[test]
fn figure1_initial_bound_too_wide_without_processing() {
    // With a generous phi (50 %) not even t3 needs processing.
    let file = MemFile::from_rows(Schema::synthetic(3), CsvFormat::default(), hotels()).unwrap();
    let index = prepared_index(&file);
    file.counters().reset();
    let mut approx = ApproximateEngine::new(index, &file, engine_cfg()).unwrap();
    let res = approx
        .evaluate(&Q, &[AggregateFunction::Mean(2)], 0.5)
        .unwrap();
    assert_eq!(res.stats.tiles_processed, 0);
    assert_eq!(
        res.stats.io.objects_read, 0,
        "answered purely from metadata"
    );
    assert!(res.cis[0].unwrap().contains(48.6));
}
