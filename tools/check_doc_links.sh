#!/usr/bin/env bash
# Fails when an intra-repo markdown link in README.md, ROADMAP.md, or
# docs/*.md points at a file or anchor-less path that does not exist.
# External links (http/https/mailto) are ignored. No dependencies beyond
# grep/sed.
set -euo pipefail

cd "$(dirname "$0")/.."

status=0
for file in README.md ROADMAP.md docs/*.md; do
  [ -f "$file" ] || continue
  dir=$(dirname "$file")
  # Extract inline markdown link targets: [text](target)
  targets=$(grep -o '\[[^]]*\]([^)]*)' "$file" | sed 's/.*(\(.*\))/\1/' || true)
  while IFS= read -r target; do
    [ -n "$target" ] || continue
    case "$target" in
      http://*|https://*|mailto:*|\#*) continue ;;
    esac
    path=${target%%#*}                       # strip anchors
    [ -n "$path" ] || continue
    case "$path" in
      /*) resolved=".$path" ;;               # repo-absolute
      *) resolved="$dir/$path" ;;            # relative to the file
    esac
    if [ ! -e "$resolved" ]; then
      echo "BROKEN: $file -> $target (no such path: $resolved)" >&2
      status=1
    fi
  done <<EOF
$targets
EOF
done

if [ "$status" -ne 0 ]; then
  echo "doc link check failed" >&2
else
  echo "doc links OK"
fi
exit "$status"
