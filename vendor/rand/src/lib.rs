//! Offline stand-in for the parts of the `rand` crate this workspace uses.
//!
//! The build environment has no access to crates.io, so this vendored shim
//! provides the exact API surface the workspace needs — `rand::rngs::StdRng`,
//! `SeedableRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`, and
//! `Rng::gen_bool` — backed by SplitMix64. It is deterministic for a given
//! seed (which is all the tests and workload generators require) and is NOT
//! cryptographically secure. Swap for the real crate by pointing the
//! workspace dependency back at crates.io.

use std::ops::{Range, RangeInclusive};

/// Low-level source of randomness.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

/// A type that can be sampled uniformly from the unit/standard distribution.
pub trait Standard: Sized {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` using the top 53 bits.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A type that can be sampled uniformly from a `[lo, hi)` / `[lo, hi]`
/// interval (subset of `rand::distributions::uniform::SampleUniform`).
pub trait SampleUniform: Copy + PartialOrd {
    fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self;
}

macro_rules! int_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128).wrapping_sub(lo as u128) as u64;
                // Modulo bias is negligible for the span sizes used here and
                // irrelevant for test determinism.
                lo + (rng.next_u64() % span) as $t
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let span = (hi as u128 - lo as u128 + 1) as u64;
                if span == 0 {
                    // Full-width range: any value is valid.
                    return rng.next_u64() as $t;
                }
                lo + (rng.next_u64() % span) as $t
            }
        }
    )*};
}
int_sample_uniform!(usize, u64, u32, u16, u8, i64, i32);

macro_rules! float_sample_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                let v = lo + <$t>::sample_standard(rng) * (hi - lo);
                // Guard against rounding up to the excluded endpoint.
                if v >= hi { lo } else { v }
            }
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self) -> Self {
                if lo == hi {
                    return lo;
                }
                lo + <$t>::sample_standard(rng) * (hi - lo)
            }
        }
    )*};
}
float_sample_uniform!(f64, f32);

/// A range that can be sampled uniformly.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample empty range");
        T::sample_half_open(rng, self.start, self.end)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (lo, hi) = self.into_inner();
        assert!(lo <= hi, "cannot sample empty range");
        T::sample_inclusive(rng, lo, hi)
    }
}

/// The user-facing sampling trait (subset of `rand::Rng`).
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample_standard(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p must be in [0,1]");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seeding trait (subset of `rand::SeedableRng`).
pub trait SeedableRng: Sized {
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic SplitMix64 generator. Statistically solid for test-data
    /// generation; not a CSPRNG, unlike the real `StdRng`.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(state: u64) -> Self {
            StdRng { state }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.gen::<f64>().to_bits(), b.gen::<f64>().to_bits());
        }
    }

    #[test]
    fn unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn ranges_respected() {
        let mut rng = StdRng::seed_from_u64(2);
        for _ in 0..10_000 {
            let x = rng.gen_range(3.0..5.0);
            assert!((3.0..5.0).contains(&x));
            let i = rng.gen_range(0..7usize);
            assert!(i < 7);
            let inc = rng.gen_range(1.0..=1.0);
            assert_eq!(inc, 1.0);
            let j = rng.gen_range(2..=4u64);
            assert!((2..=4).contains(&j));
        }
    }

    #[test]
    fn rough_uniformity() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut buckets = [0u32; 10];
        for _ in 0..100_000 {
            buckets[rng.gen_range(0..10usize)] += 1;
        }
        for &b in &buckets {
            assert!(
                (8_000..12_000).contains(&b),
                "bucket count {b} out of range"
            );
        }
    }
}
