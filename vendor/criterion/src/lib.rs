//! Offline stand-in for the subset of the `criterion` API this workspace's
//! bench targets use.
//!
//! The build environment has no crates.io access, so this shim keeps
//! `cargo bench` working end to end: every `criterion_group!` target runs,
//! each benchmark body is measured with `std::time::Instant` over a small
//! number of warm-up + sample iterations, and a one-line mean/min report is
//! printed. There is no statistical analysis, HTML report, or CLI filtering —
//! point the workspace dependency back at crates.io to get those.

use std::fmt::Display;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Number of timed samples per benchmark (the real crate defaults to 100;
/// the shim keeps bench runs fast). `sample_size()` overrides this.
const DEFAULT_SAMPLES: usize = 10;

/// Per-sample time budget: a sample is one timed call of the routine.
const WARMUP_ITERS: usize = 1;

#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }

    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        BenchmarkId { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        BenchmarkId { id: s }
    }
}

#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    Elements(u64),
    Bytes(u64),
}

#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    SmallInput,
    LargeInput,
    PerIteration,
}

/// Collects timing for one benchmark body.
pub struct Bencher {
    samples: usize,
    times: Vec<Duration>,
}

impl Bencher {
    fn new(samples: usize) -> Self {
        Bencher {
            samples,
            times: Vec::with_capacity(samples),
        }
    }

    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        for _ in 0..WARMUP_ITERS {
            black_box(routine());
        }
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(routine());
            self.times.push(start.elapsed());
        }
    }

    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(setup()));
        }
        for _ in 0..self.samples {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            self.times.push(start.elapsed());
        }
    }

    pub fn iter_batched_ref<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(&mut I) -> O,
    {
        for _ in 0..WARMUP_ITERS {
            black_box(routine(&mut setup()));
        }
        for _ in 0..self.samples {
            let mut input = setup();
            let start = Instant::now();
            black_box(routine(&mut input));
            self.times.push(start.elapsed());
        }
    }
}

fn report(id: &str, times: &[Duration], throughput: Option<Throughput>) {
    if times.is_empty() {
        println!("{id:<40} (no samples)");
        return;
    }
    let total: Duration = times.iter().sum();
    let mean = total / times.len() as u32;
    let min = times.iter().min().copied().unwrap_or_default();
    let rate = match throughput {
        Some(Throughput::Elements(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:>12.0} elem/s", n as f64 / mean.as_secs_f64())
        }
        Some(Throughput::Bytes(n)) if mean.as_secs_f64() > 0.0 => {
            format!("  {:>12.0} B/s", n as f64 / mean.as_secs_f64())
        }
        _ => String::new(),
    };
    println!("{id:<40} mean {mean:>12.3?}  min {min:>12.3?}{rate}");
}

/// Top-level benchmark driver (shim of `criterion::Criterion`).
pub struct Criterion {
    sample_size: usize,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: DEFAULT_SAMPLES,
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn configure_from_args(self) -> Self {
        self
    }

    pub fn bench_function<I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = id.into();
        run_one(&id.id, self.sample_size, None, f);
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let sample_size = self.sample_size;
        BenchmarkGroup {
            _parent: self,
            name: name.into(),
            sample_size,
            throughput: None,
        }
    }
}

fn run_one(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    mut f: impl FnMut(&mut Bencher),
) {
    let mut bencher = Bencher::new(samples);
    f(&mut bencher);
    report(id, &bencher.times, throughput);
}

/// Shim of `criterion::BenchmarkGroup`.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn warm_up_time(&mut self, _time: Duration) -> &mut Self {
        self
    }

    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    pub fn bench_function<I: Into<BenchmarkId>>(
        &mut self,
        id: I,
        f: impl FnMut(&mut Bencher),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.sample_size, self.throughput, f);
        self
    }

    pub fn bench_with_input<I: Into<BenchmarkId>, T: ?Sized>(
        &mut self,
        id: I,
        input: &T,
        mut f: impl FnMut(&mut Bencher, &T),
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into().id);
        run_one(&id, self.sample_size, self.throughput, |b| f(b, input));
        self
    }

    pub fn finish(self) {}
}

#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $( $target(&mut criterion); )+
        }
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion::default().sample_size(3);
        let mut runs = 0;
        c.bench_function("noop", |b| b.iter(|| runs += 1));
        assert!(runs >= 3);
    }

    #[test]
    fn group_runs_with_input() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        group.sample_size(2);
        group.throughput(Throughput::Elements(10));
        let mut total = 0u64;
        group.bench_with_input(BenchmarkId::from_parameter(5), &5u64, |b, &n| {
            b.iter(|| total += n)
        });
        group.finish();
        assert!(total >= 10);
    }

    #[test]
    fn iter_batched_consumes_fresh_inputs() {
        let mut b = Bencher::new(4);
        let mut made = 0;
        b.iter_batched(
            || {
                made += 1;
                vec![made]
            },
            |v| v.len(),
            BatchSize::SmallInput,
        );
        assert_eq!(made, 4 + 1);
        assert_eq!(b.times.len(), 4);
    }
}
