//! Offline stand-in for the subset of `proptest` this workspace's property
//! tests use.
//!
//! The build environment has no crates.io access. This shim runs each
//! property over `ProptestConfig::cases` deterministically-seeded random
//! inputs (seed = FNV hash of the test name, so failures reproduce across
//! runs) and panics on the first failing case. There is **no shrinking** —
//! a failing case prints its inputs via the panic message only. Point the
//! workspace dependency back at crates.io to get real shrinking.

use rand::rngs::StdRng;

pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::{Range, RangeInclusive};

    /// Object-safe value generator (shim of `proptest::strategy::Strategy`).
    pub trait Strategy {
        type Value;

        fn generate(&self, rng: &mut StdRng) -> Self::Value;

        fn prop_map<O, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> O,
        {
            Map { inner: self, f }
        }

        fn prop_flat_map<S2, F>(self, f: F) -> FlatMap<Self, F>
        where
            Self: Sized,
            S2: Strategy,
            F: Fn(Self::Value) -> S2,
        {
            FlatMap { inner: self, f }
        }
    }

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            (**self).generate(rng)
        }
    }

    /// `&str` as a strategy, shim-style: supports the `.{m,n}` pattern form
    /// (m..=n arbitrary non-newline chars) and plain literals without regex
    /// metacharacters. Anything fancier needs the real proptest.
    impl Strategy for &str {
        type Value = String;
        fn generate(&self, rng: &mut StdRng) -> String {
            if let Some(rest) = self.strip_prefix(".{") {
                if let Some(body) = rest.strip_suffix('}') {
                    if let Some((m, n)) = body.split_once(',') {
                        if let (Ok(m), Ok(n)) = (m.trim().parse(), n.trim().parse()) {
                            return random_text(rng, m, n);
                        }
                    }
                }
            }
            assert!(
                !self.contains(['\\', '[', '(', '{', '*', '+', '?', '|', '$', '^']),
                "proptest shim: unsupported regex pattern {self:?} (only `.{{m,n}}` and literals)"
            );
            self.to_string()
        }
    }

    fn random_text(rng: &mut StdRng, min_len: usize, max_len: usize) -> String {
        let len = rng.gen_range(min_len..=max_len);
        (0..len)
            .map(|_| {
                // ASCII-heavy (including delimiters/quotes, the interesting
                // CSV cases) with some multi-byte chars mixed in.
                match rng.gen_range(0..10usize) {
                    0..=6 => char::from(rng.gen_range(0x20u8..0x7F)),
                    7 => ['"', ',', ';', '\t', '\\'][rng.gen_range(0..5usize)],
                    _ => loop {
                        if let Some(c) = char::from_u32(rng.gen_range(0x80u32..0x2FFF)) {
                            break c;
                        }
                    },
                }
            })
            .collect()
    }

    /// Always produces a clone of the wrapped value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    impl Strategy for Range<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for Range<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
            impl Strategy for RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }
    int_range_strategy!(usize, u64, u32, i64, i32);

    impl Strategy for RangeInclusive<f64> {
        type Value = f64;
        fn generate(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    impl Strategy for RangeInclusive<f32> {
        type Value = f32;
        fn generate(&self, rng: &mut StdRng) -> f32 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);

    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut StdRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    pub struct FlatMap<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, S2: Strategy, F: Fn(S::Value) -> S2> Strategy for FlatMap<S, F> {
        type Value = S2::Value;
        fn generate(&self, rng: &mut StdRng) -> S2::Value {
            (self.f)(self.inner.generate(rng)).generate(rng)
        }
    }

    /// Uniform choice between boxed strategies (backs `prop_oneof!`).
    pub struct Union<T> {
        options: Vec<Box<dyn Strategy<Value = T>>>,
    }

    impl<T> Union<T> {
        pub fn new(options: Vec<Box<dyn Strategy<Value = T>>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            let ix = rng.gen_range(0..self.options.len());
            self.options[ix].generate(rng)
        }
    }
}

pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Shim of `proptest::arbitrary::Arbitrary` for primitives: the full
    /// value range of the type.
    pub trait Arbitrary: Sized {
        fn arbitrary_value(rng: &mut StdRng) -> Self;
    }

    macro_rules! arbitrary_int {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary_value(rng: &mut StdRng) -> Self {
                    rng.gen::<u64>() as $t
                }
            }
        )*};
    }
    arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            rng.gen::<bool>()
        }
    }

    impl Arbitrary for char {
        fn arbitrary_value(rng: &mut StdRng) -> Self {
            loop {
                if let Some(c) = char::from_u32(rng.gen_range(0u32..=0x10FFFF)) {
                    return c;
                }
            }
        }
    }

    pub struct AnyStrategy<T> {
        _marker: std::marker::PhantomData<T>,
    }

    /// `proptest::prelude::any::<T>()`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy {
            _marker: std::marker::PhantomData,
        }
    }

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut StdRng) -> T {
            T::arbitrary_value(rng)
        }
    }
}

pub mod num {
    /// Shim of `proptest::num::f64`: bitmask-of-float-classes strategies
    /// combinable with `|`, generating values of the selected classes.
    pub mod f64 {
        use crate::strategy::Strategy;
        use rand::rngs::StdRng;
        use rand::Rng;
        use std::ops::BitOr;

        #[derive(Debug, Clone, Copy)]
        pub struct FloatClasses(u8);

        pub const NORMAL: FloatClasses = FloatClasses(1);
        pub const ZERO: FloatClasses = FloatClasses(2);
        pub const SUBNORMAL: FloatClasses = FloatClasses(4);

        impl BitOr for FloatClasses {
            type Output = FloatClasses;
            fn bitor(self, rhs: Self) -> Self {
                FloatClasses(self.0 | rhs.0)
            }
        }

        impl Strategy for FloatClasses {
            type Value = f64;
            fn generate(&self, rng: &mut StdRng) -> f64 {
                let classes: Vec<u8> = [1u8, 2, 4]
                    .into_iter()
                    .filter(|c| self.0 & c != 0)
                    .collect();
                assert!(!classes.is_empty(), "empty float class mask");
                let sign = if rng.gen::<bool>() { 1.0 } else { -1.0 };
                match classes[rng.gen_range(0..classes.len())] {
                    1 => {
                        // Normal: random exponent across the full normal
                        // range, random mantissa.
                        let exp = rng.gen_range(1u64..2047);
                        let mantissa = rng.gen::<u64>() & ((1u64 << 52) - 1);
                        let bits = (exp << 52) | mantissa;
                        let v = f64::from_bits(bits);
                        if v.is_finite() {
                            sign * v
                        } else {
                            sign * 1.5
                        }
                    }
                    2 => sign * 0.0,
                    _ => {
                        let mantissa = rng.gen::<u64>() & ((1u64 << 52) - 1);
                        sign * f64::from_bits(mantissa.max(1))
                    }
                }
            }
        }
    }
}

pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;
    use std::ops::Range;

    pub struct VecStrategy<S> {
        element: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec`: a Vec with length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Shim of `proptest::test_runner::Config`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 32 }
    }
}

/// Deterministic per-test RNG: FNV-1a over the test name, overridable with
/// `PROPTEST_SEED` for reproducing a CI failure locally.
pub fn rng_for_test(name: &str) -> StdRng {
    use rand::SeedableRng;
    let seed = match std::env::var("PROPTEST_SEED") {
        Ok(v) => v.parse().unwrap_or(0),
        Err(_) => {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            h
        }
    };
    StdRng::seed_from_u64(seed)
}

pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::collection;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Mirrors `proptest::prelude::prop` (module of re-exports).
    pub mod prop {
        pub use crate::collection;
        pub use crate::num;
    }
}

#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond)
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {
        assert_eq!($a, $b)
    };
    ($a:expr, $b:expr, $($fmt:tt)+) => {
        assert_eq!($a, $b, $($fmt)+)
    };
}

#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $(Box::new($strategy) as Box<dyn $crate::strategy::Strategy<Value = _>>,)+
        ])
    };
}

/// The shim `proptest!` block: each `#[test]` fn becomes a loop over
/// `cases` generated inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { config = $config; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { config = $crate::ProptestConfig::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (config = $config:expr; $(
        $(#[$meta:meta])*
        fn $name:ident( $($pat:pat in $strategy:expr),+ $(,)? ) $body:block
    )*) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            let mut rng = $crate::rng_for_test(stringify!($name));
            for case in 0..config.cases {
                $(let $pat = $crate::strategy::Strategy::generate(&$strategy, &mut rng);)+
                let run = || -> () { $body };
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(run));
                if let Err(panic) = outcome {
                    eprintln!(
                        "proptest shim: case {}/{} of `{}` failed (seed fixed per test name; \
                         set PROPTEST_SEED to override)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    std::panic::resume_unwind(panic);
                }
            }
        }
    )*};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn strategies_generate_in_bounds() {
        let mut rng = crate::rng_for_test("strategies_generate_in_bounds");
        let s = (0.0f64..10.0, 5usize..9).prop_map(|(x, n)| (x * 2.0, n));
        for _ in 0..200 {
            let (x, n) = s.generate(&mut rng);
            assert!((0.0..20.0).contains(&x));
            assert!((5..9).contains(&n));
        }
    }

    #[test]
    fn oneof_and_flat_map_cover_options() {
        let mut rng = crate::rng_for_test("oneof");
        let s = prop_oneof![Just(0.0), 0.5f64..1.0];
        let mut saw_zero = false;
        let mut saw_range = false;
        for _ in 0..200 {
            let v = s.generate(&mut rng);
            if v == 0.0 {
                saw_zero = true;
            } else {
                assert!((0.5..1.0).contains(&v));
                saw_range = true;
            }
        }
        assert!(saw_zero && saw_range);

        let fm = (1.0f64..2.0).prop_flat_map(|hi| (Just(hi), 0.0f64..hi));
        for _ in 0..100 {
            let (hi, lo) = fm.generate(&mut rng);
            assert!(lo < hi);
        }
    }

    #[test]
    fn collection_vec_respects_len() {
        let mut rng = crate::rng_for_test("vec");
        let s = collection::vec(0usize..3, 1..8);
        for _ in 0..100 {
            let v = s.generate(&mut rng);
            assert!((1..8).contains(&v.len()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn proptest_macro_runs(x in 0.0f64..1.0, n in 1usize..4) {
            prop_assert!(x < 1.0);
            prop_assert_eq!(n.min(3), n);
        }
    }
}
