//! Offline stand-in for the `parking_lot` lock API this workspace uses.
//!
//! Backed by `std::sync::RwLock`/`Mutex` with the parking_lot calling
//! convention: `read()`/`write()`/`lock()` return guards directly instead of
//! `Result`s. Poisoning is transparently ignored (parking_lot locks do not
//! poison), so a panicking writer does not wedge every later reader.

use std::sync::{
    Mutex as StdMutex, MutexGuard, RwLock as StdRwLock, RwLockReadGuard, RwLockWriteGuard,
};

#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: StdRwLock<T>,
}

impl<T> RwLock<T> {
    pub fn new(value: T) -> Self {
        RwLock {
            inner: StdRwLock::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> RwLock<T> {
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner.read().unwrap_or_else(|e| e.into_inner())
    }

    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner.write().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_read(&self) -> Option<RwLockReadGuard<'_, T>> {
        self.inner.try_read().ok()
    }

    pub fn try_write(&self) -> Option<RwLockWriteGuard<'_, T>> {
        self.inner.try_write().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: StdMutex<T>,
}

impl<T> Mutex<T> {
    pub fn new(value: T) -> Self {
        Mutex {
            inner: StdMutex::new(value),
        }
    }

    pub fn into_inner(self) -> T {
        self.inner.into_inner().unwrap_or_else(|e| e.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        self.inner.try_lock().ok()
    }

    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(|e| e.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn rwlock_round_trip() {
        let lock = RwLock::new(1);
        *lock.write() += 1;
        assert_eq!(*lock.read(), 2);
        assert_eq!(lock.into_inner(), 2);
    }

    #[test]
    fn readers_do_not_block_each_other() {
        let lock = Arc::new(RwLock::new(0u32));
        let a = lock.read();
        let b = lock.try_read();
        assert!(b.is_some());
        drop(a);
    }

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(vec![1, 2]);
        m.lock().push(3);
        assert_eq!(m.into_inner(), vec![1, 2, 3]);
    }
}
